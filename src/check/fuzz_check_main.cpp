// fuzz_check — deterministic scenario fuzzer driver.
//
//   fuzz_check --seeds 100                 # standard invariant fuzzing
//   fuzz_check --seeds 100 --jobs 0        # same corpus, all host cores
//   fuzz_check --seeds 10 --differential   # FlowValve-vs-HTB share oracle
//   fuzz_check --seed 0x2a -v              # re-run one seed, print scenario
//   fuzz_check --seeds 3 --inject-fault leak --expect-violations
//   fuzz_check --seeds 10 --chaos          # seeded fault schedules + recovery
//   fuzz_check --seeds 10 --campaign       # compound campaigns + recovery SLO
//   fuzz_check --seed 0x2a --campaign --minimize   # shrink a failing schedule
//
// Every failing seed prints a one-line repro command; the same seed always
// regenerates the identical scenario (see src/check/fuzzer.h) and — under
// --chaos / --campaign — the identical fault schedule (see src/fault/fault.h).
// The repro line is emitted by the same module that parses the flags
// (src/check/cli_options.h), so it round-trips every RunOptions field, and
// --minimize first delta-debugs the failing seed's resolved schedule down to
// a minimal failing subset printed as explicit --fault-event flags. Seeds are
// mutually independent, so --jobs N fans them across N threads and merges
// the reports in seed order: the output (and every repro line) is identical
// to a sequential run, which --verify-sequential re-proves per seed by
// rerunning the corpus inline and diffing bit-exact report fingerprints.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "check/cli_options.h"
#include "check/fuzzer.h"
#include "check/runner.h"
#include "fault/fault.h"

int main(int argc, char** argv) {
  using namespace flowvalve;

  check::CliOptions cli;
  switch (check::parse_cli(argc, argv, cli)) {
    case check::CliParseResult::kOk:
      break;
    case check::CliParseResult::kHelp:
      return 0;
    case check::CliParseResult::kError:
      return 2;
  }
  const check::RunOptions& opts = cli.opts;

  std::vector<std::uint64_t> seeds;
  seeds.reserve(cli.num_seeds);
  for (std::uint64_t s = cli.start_seed; s < cli.start_seed + cli.num_seeds;
       ++s)
    seeds.push_back(s);

  // Fan the corpus across the thread pool; outcomes come back in seed
  // order regardless of completion order, so the report below is identical
  // to a sequential run's.
  const std::vector<check::SeedOutcome> outcomes =
      check::run_corpus(seeds, opts, cli.jobs);

  // Shrink a failing seed's resolved fault schedule, then print the minimal
  // subset as an explicit --fault-event repro (schedule-deriving flags
  // dropped — the events now say it all).
  const auto print_minimized = [&](std::uint64_t s) {
    const check::ResolvedSeed resolved = check::resolve_seed(s, opts);
    const fault::FaultSchedule minimal = check::minimize_schedule(resolved);
    std::printf("  minimized: %zu/%zu fault events still fail\n",
                minimal.size(), resolved.opts.faults.size());
    std::printf("  repro: %s\n",
                check::repro_command_with_faults(cli, s, minimal).c_str());
  };

  std::uint64_t failures = 0;
  std::uint64_t caught = 0;
  std::uint64_t crashes = 0;
  for (const check::SeedOutcome& outcome : outcomes) {
    const std::uint64_t s = outcome.seed;
    if (cli.verbose) {
      const check::FuzzScenario sc =
          opts.differential ? check::generate_differential_scenario(s)
                            : check::generate_scenario(s);
      std::fputs(sc.describe().c_str(), stdout);
      if (opts.chaos)
        std::fputs(fault::describe_schedule(
                       fault::generate_fault_schedule(s, sc.horizon, sc.nic))
                       .c_str(),
                   stdout);
      if (opts.campaign)
        std::fputs(
            fault::describe_schedule(
                fault::generate_campaign_schedule(s, sc.horizon, sc.nic))
                .c_str(),
            stdout);
    }
    if (outcome.crashed) {
      // Structured crash record: the seed's exception, isolated to its own
      // slot — every other seed in the batch completed and merged normally.
      ++failures;
      ++crashes;
      std::printf("seed 0x%llx: CRASH (%s)\n",
                  static_cast<unsigned long long>(s),
                  outcome.crash_what.c_str());
      if (cli.minimize)
        print_minimized(s);
      else if (!cli.single_seed)
        std::printf("  repro: %s\n", check::repro_command(cli, s).c_str());
      continue;
    }
    const check::CheckReport& report = outcome.report;
    std::printf("%s\n", report.summary().c_str());
    if (!report.ok()) {
      ++failures;
      ++caught;
      for (const auto& v : report.violations)
        std::printf("    %s\n", v.to_string().c_str());
      if (report.violation_total > report.violations.size())
        std::printf("    ... and %llu more\n",
                    static_cast<unsigned long long>(report.violation_total -
                                                    report.violations.size()));
      if (cli.minimize)
        print_minimized(s);
      else if (!cli.single_seed)
        std::printf("  repro: %s\n", check::repro_command(cli, s).c_str());
    }
  }

  // Sequential-equivalence oracle: the corpus rerun inline on this thread
  // must produce a bit-identical report for every seed.
  if (cli.verify_sequential) {
    const std::vector<check::SeedOutcome> sequential =
        check::run_corpus(seeds, opts, /*jobs=*/1);
    std::uint64_t divergent = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const bool same =
          outcomes[i].crashed == sequential[i].crashed &&
          (outcomes[i].crashed
               ? outcomes[i].crash_what == sequential[i].crash_what
               : check::report_fingerprint(outcomes[i].report) ==
                     check::report_fingerprint(sequential[i].report));
      if (!same) {
        ++divergent;
        std::printf(
            "seed 0x%llx: parallel run DIVERGES from sequential rerun\n",
            static_cast<unsigned long long>(outcomes[i].seed));
      }
    }
    if (divergent) {
      std::printf("fuzz_check: %llu/%llu seeds diverged under --jobs %u\n",
                  static_cast<unsigned long long>(divergent),
                  static_cast<unsigned long long>(cli.num_seeds), cli.jobs);
      return 1;
    }
    std::printf("fuzz_check: all %llu seeds bit-identical to sequential\n",
                static_cast<unsigned long long>(cli.num_seeds));
  }

  if (crashes) {
    std::printf("fuzz_check: %llu/%llu seeds CRASHED\n",
                static_cast<unsigned long long>(crashes),
                static_cast<unsigned long long>(cli.num_seeds));
    return 1;
  }
  if (cli.expect_violations) {
    // Some scenarios legitimately mask a fault (e.g. a pipeline that never
    // reorders makes the bypass fault unobservable), so require the bug to
    // be caught on at least one seed rather than all of them.
    std::printf("fuzz_check: injected fault caught on %llu/%llu seeds\n",
                static_cast<unsigned long long>(caught),
                static_cast<unsigned long long>(cli.num_seeds));
    return caught > 0 ? 0 : 1;
  }
  if (failures) {
    std::printf("fuzz_check: %llu/%llu seeds FAILED\n",
                static_cast<unsigned long long>(failures),
                static_cast<unsigned long long>(cli.num_seeds));
    return 1;
  }
  std::printf("fuzz_check: %llu seeds clean\n",
              static_cast<unsigned long long>(cli.num_seeds));
  return 0;
}
