// Differential oracle for the batched NP data path (ISSUE 6): the burst
// pipeline at NpConfig::batch_size N must be behaviourally equivalent to
// the legacy per-packet path it replaced (batch_size == 1), which stays
// alive precisely so it can serve as the reference here.
//
// Four tiers of evidence, strongest first:
//   1. EXACT equivalence on a hand-built always-green scenario: leaf rates
//      far above the offered clumped load and deep rings mean no drop path
//      and no token-timing divergence can fire, so every externally visible
//      outcome — per-class delivered packets/bytes, every drop counter,
//      scheduler verdict counters, per-leaf tree counters, and the global
//      delivery ORDER — must be bit-identical across batch {1,2,31,32,33}.
//      (Under backlog, exact equality is impossible in principle: token
//      refills happen at packet-processing instants, which batching
//      legitimately moves. Counters that encode such timing — update runs,
//      lock failures, micro-engine cycles, event counts — are excluded.)
//   2. Zero invariant violations across the fuzz corpus at batch 1 and 32,
//      including chaos (fault schedules) and live-reconfig runs: every
//      checker (conservation, ordering, worker exclusivity, timestamps,
//      epoch confinement) holds on both paths.
//   3. Tolerance-bounded delivered-throughput agreement between batch 1
//      and 32 on the corpus (closed-loop senders react to latency shifts,
//      so only approximate agreement is expected).
//   4. Exact determinism at a fixed batch size: repeat runs and heap-vs-
//      wheel event-queue backends reproduce identical reports.
//
// Plus the burst-boundary edge cases: short trailing bursts, bursts
// straddling the reorder-ring wrap, watchdog salvage of a whole in-flight
// burst, burst-granular tail drop, reconfig cutovers landing only at burst
// boundaries, and the LatencyRecorder anti-smearing regression (per-packet
// dispatch instants inside a burst, not the burst completion time).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "check/runner.h"
#include "core/flowvalve.h"
#include "np/flowvalve_processor.h"
#include "np/nic_pipeline.h"
#include "obs/latency_recorder.h"
#include "sim/simulator.h"

namespace flowvalve::np {
namespace {

constexpr std::uint32_t kFrameBytes = 1518;
constexpr unsigned kNumClasses = 4;
constexpr std::size_t kNumDropReasons = 7;

/// Flat policy with four equal leaves; on a 40G link each leaf's committed
/// rate (10G) dwarfs the offered clumped load, so every verdict is green.
std::string flat_policy(sim::Rate link) {
  std::ostringstream s;
  s << "fv qdisc add dev nic0 root handle 1: htb rate " << link.gbps() << "gbit\n";
  for (unsigned i = 0; i < kNumClasses; ++i)
    s << "fv class add dev nic0 parent 1: classid 1:1" << i << " name C" << i
      << " weight 1\n";
  for (unsigned i = 0; i < kNumClasses; ++i)
    s << "fv filter add dev nic0 pref " << (10 * (i + 1)) << " vf " << i
      << " classid 1:1" << i << "\n";
  return s.str();
}

/// Passive tap collecting the externally visible outcome of a run: what
/// was delivered (per class and in what global order) and what was dropped
/// (by reason). These are exactly the quantities the differential oracle
/// compares.
struct DiffObserver final : public PipelineObserver {
  std::array<std::uint64_t, kNumDropReasons> drops_by_reason{};
  std::map<std::uint16_t, std::uint64_t> delivered_packets;
  std::map<std::uint16_t, std::uint64_t> delivered_bytes;
  std::vector<std::uint64_t> delivery_order;  // packet ids, wire order

  void on_drop(const net::Packet&, DropReason reason, sim::SimTime) override {
    ++drops_by_reason[static_cast<std::size_t>(reason)];
  }
  void on_delivered(const net::Packet& pkt, sim::SimTime) override {
    ++delivered_packets[pkt.vf_port];
    delivered_bytes[pkt.vf_port] += pkt.wire_bytes;
    delivery_order.push_back(pkt.id);
  }
};

struct GreenRun {
  NicPipeline::Stats nic;
  core::SchedulingFunction::Stats sched;
  DiffObserver obs;
  std::uint64_t submitted = 0;
  // Per-leaf tree counters, in class order.
  std::vector<std::uint64_t> leaf_fwd_packets, leaf_fwd_bytes;
  std::vector<std::uint64_t> leaf_drop_packets, leaf_drop_bytes;
};

/// The always-green clumped workload: every 200 µs each class submits a
/// clump of 8 frames (two flows × four back-to-back packets), ~0.5 Gbps
/// per class against a 10 Gbps leaf — token buckets never drain, nothing
/// borrows, nothing drops. Clumps keep the VF rings deep enough that
/// workers pull genuine multi-packet, multi-flow bursts with same-flow
/// repeats for the EMC-amortization path. The spacing is wide enough that
/// every clump fully drains (a 24-packet burst ≈ 60 µs on one worker)
/// before the next arrives: a clump straddling a still-busy worker is a
/// legitimate divergence point (worker availability differs between batch
/// sizes, shifting the round-robin pull order), so it belongs to the
/// tolerance tier below, not the exact tier.
GreenRun run_green_scenario(unsigned batch_size) {
  NpConfig cfg = agilio_cx_40g();
  cfg.num_workers = 8;
  cfg.num_vfs = kNumClasses;
  cfg.batch_size = batch_size;

  sim::Simulator sim;
  core::FlowValveEngine engine(engine_options_for(cfg));
  const std::string err = engine.configure(flat_policy(cfg.wire_rate));
  EXPECT_TRUE(err.empty()) << err;

  FlowValveProcessor processor(engine);
  NicPipeline pipeline(sim, cfg, processor);

  GreenRun run;
  pipeline.set_observer(&run.obs);

  constexpr int kTicks = 100;
  constexpr unsigned kFlowsPerClass = 2;
  constexpr unsigned kPacketsPerFlow = 4;
  std::uint64_t next_id = 1;
  for (int tick = 0; tick < kTicks; ++tick) {
    sim.schedule_at(sim::microseconds(200) * tick, [&pipeline, &run, &next_id] {
      for (std::uint16_t vf = 0; vf < kNumClasses; ++vf) {
        for (unsigned f = 0; f < kFlowsPerClass; ++f) {
          for (unsigned k = 0; k < kPacketsPerFlow; ++k) {
            net::Packet p;
            p.id = next_id++;
            p.vf_port = vf;
            p.flow_id = vf * kFlowsPerClass + f;
            p.wire_bytes = kFrameBytes;
            p.tuple.src_ip = 0x0a000001 + vf;
            p.tuple.dst_ip = 0x0a000100 + f;
            p.tuple.src_port = static_cast<std::uint16_t>(1000 + f);
            p.tuple.dst_port = 80;
            ++run.submitted;
            pipeline.submit(std::move(p));
          }
        }
      }
    });
  }
  sim.run_all();

  run.nic = pipeline.stats();
  run.sched = engine.scheduler().stats();
  const core::SchedulingTree& tree = engine.tree();
  for (unsigned i = 0; i < kNumClasses; ++i) {
    const core::ClassId id = tree.find("C" + std::to_string(i));
    EXPECT_NE(id, core::kNoClass);
    const core::SchedClass& leaf = tree.at(id);
    run.leaf_fwd_packets.push_back(leaf.fwd_packets);
    run.leaf_fwd_bytes.push_back(leaf.fwd_bytes);
    run.leaf_drop_packets.push_back(leaf.drop_packets);
    run.leaf_drop_bytes.push_back(leaf.drop_bytes);
  }
  pipeline.set_observer(nullptr);
  return run;
}

/// Everything timing-independent in an always-green run. Deliberately
/// excludes event counts, cycle totals, update/lock-failure counters and
/// occupancy peaks — those legitimately depend on how work is grouped
/// into events, which is the one thing batching is allowed to change.
std::string green_fingerprint(const GreenRun& r) {
  std::ostringstream s;
  s << "submitted=" << r.nic.submitted << " processed=" << r.nic.processed
    << " wire=" << r.nic.forwarded_to_wire
    << " wire_bytes=" << r.nic.wire_bytes
    << " vf_drops=" << r.nic.vf_ring_drops
    << " sched_drops=" << r.nic.scheduler_drops
    << " tx_drops=" << r.nic.tx_ring_drops
    << " reorder_flush_drops=" << r.nic.reorder_flush_drops
    << " timeout_drops=" << r.nic.reorder_timeout_drops
    << " watchdog_drops=" << r.nic.watchdog_drops
    << " admission_drops=" << r.nic.admission_drops
    << " sched_fwd=" << r.sched.forwarded << " sched_drop=" << r.sched.dropped
    << " sched_borrow=" << r.sched.borrowed;
  for (unsigned i = 0; i < kNumClasses; ++i)
    s << " leaf" << i << "=" << r.leaf_fwd_packets[i] << "/"
      << r.leaf_fwd_bytes[i] << "/" << r.leaf_drop_packets[i] << "/"
      << r.leaf_drop_bytes[i];
  for (const auto& [vf, n] : r.obs.delivered_packets)
    s << " vf" << vf << "=" << n << "/" << r.obs.delivered_bytes.at(vf);
  for (std::size_t i = 0; i < kNumDropReasons; ++i)
    s << " dr" << i << "=" << r.obs.drops_by_reason[i];
  return s.str();
}

TEST(NpBatchDiff, AlwaysGreenScenarioIsExactAcrossBatchSizes) {
  const GreenRun ref = run_green_scenario(1);
  const std::string ref_fp = green_fingerprint(ref);

  // Sanity on the reference itself: the scenario really is lossless — the
  // exact-equality claim is only meaningful if no drop path fired.
  EXPECT_EQ(ref.nic.submitted, ref.submitted);
  EXPECT_EQ(ref.obs.delivery_order.size(), ref.submitted);
  EXPECT_EQ(ref.nic.scheduler_drops, 0u);
  EXPECT_EQ(ref.nic.tx_ring_drops, 0u);
  EXPECT_EQ(ref.nic.vf_ring_drops, 0u);
  EXPECT_EQ(ref.sched.borrowed, 0u);

  // One packet either side of the default 32 exercises exact-fill and
  // short-trailing-burst boundaries; 2 exercises minimal grouping.
  for (unsigned batch : {2u, 31u, 32u, 33u}) {
    const GreenRun got = run_green_scenario(batch);
    EXPECT_EQ(green_fingerprint(got), ref_fp) << "batch " << batch;
    // The wire order itself must match: reorder enforcement keys on
    // ingress sequence, and the burst puller preserves the legacy
    // round-robin pull order packet for packet.
    if (got.obs.delivery_order != ref.obs.delivery_order) {
      std::size_t i = 0;
      while (i < got.obs.delivery_order.size() &&
             i < ref.obs.delivery_order.size() &&
             got.obs.delivery_order[i] == ref.obs.delivery_order[i])
        ++i;
      ADD_FAILURE() << "delivery order diverged at batch " << batch
                    << ", index " << i << ": ref "
                    << (i < ref.obs.delivery_order.size()
                            ? ref.obs.delivery_order[i] : 0)
                    << " vs got "
                    << (i < got.obs.delivery_order.size()
                            ? got.obs.delivery_order[i] : 0);
    }
  }
}

// ---------------------------------------------------------------------------
// Fuzz-corpus tiers: invariants, throughput tolerance, determinism.
// ---------------------------------------------------------------------------

std::string first_violation(const check::CheckReport& r) {
  return r.violations.empty() ? std::string("(none stored)")
                              : r.violations.front().to_string();
}

TEST(NpBatchDiff, FuzzCorpusHoldsInvariantsAtBatch1And32) {
  for (std::uint64_t seed : {1ull, 2ull, 7ull, 11ull, 23ull, 42ull}) {
    for (unsigned batch : {1u, 32u}) {
      check::RunOptions opts;
      opts.batch_size = batch;
      const check::CheckReport r = check::run_seed(seed, opts);
      EXPECT_EQ(r.violation_total, 0u)
          << "seed " << seed << " batch " << batch << ": " << r.summary()
          << "\n" << first_violation(r);
    }
  }
}

TEST(NpBatchDiff, ChaosAndReconfigCorpusHoldsInvariantsAtBatch1And32) {
  for (std::uint64_t seed : {3ull, 5ull}) {
    for (unsigned batch : {1u, 32u}) {
      check::RunOptions chaos;
      chaos.chaos = true;
      chaos.batch_size = batch;
      const check::CheckReport c = check::run_seed(seed, chaos);
      EXPECT_EQ(c.violation_total, 0u)
          << "chaos seed " << seed << " batch " << batch << ": " << c.summary()
          << "\n" << first_violation(c);

      check::RunOptions reconfig;
      reconfig.reconfig_updates = 3;
      reconfig.batch_size = batch;
      const check::CheckReport rc = check::run_seed(seed, reconfig);
      EXPECT_EQ(rc.violation_total, 0u)
          << "reconfig seed " << seed << " batch " << batch << ": "
          << rc.summary() << "\n" << first_violation(rc);
    }
  }
}

TEST(NpBatchDiff, DeliveredThroughputAgreesWithinTolerance) {
  // Batching moves per-packet latency (a packet can wait for its burst
  // peers), and closed-loop senders react to that, so delivered counts are
  // compared with slack rather than exactly. 30% is far tighter than any
  // real batching bug (lost bursts, double commits) and loose enough for
  // TCP's feedback loop.
  for (std::uint64_t seed : {2ull, 7ull, 42ull}) {
    check::RunOptions one, many;
    one.batch_size = 1;
    many.batch_size = 32;
    const check::CheckReport a = check::run_seed(seed, one);
    const check::CheckReport b = check::run_seed(seed, many);
    ASSERT_GT(a.delivered, 0u) << "seed " << seed;
    ASSERT_GT(b.delivered, 0u) << "seed " << seed;
    const double hi = static_cast<double>(std::max(a.delivered, b.delivered));
    const double lo = static_cast<double>(std::min(a.delivered, b.delivered));
    EXPECT_LE((hi - lo) / hi, 0.30)
        << "seed " << seed << ": batch1 delivered " << a.delivered
        << " vs batch32 " << b.delivered;
  }
}

// Full-report fingerprint for the determinism tier — here nothing at all
// may differ, so use the canonical check::report_fingerprint (every
// CheckReport field, hexfloat doubles).
using check::report_fingerprint;

TEST(NpBatchDiff, FixedBatchRunsAreDeterministic) {
  for (std::uint64_t seed : {2ull, 17ull}) {
    check::RunOptions opts;
    opts.batch_size = 32;
    const check::CheckReport first = check::run_seed(seed, opts);
    const check::CheckReport second = check::run_seed(seed, opts);
    EXPECT_EQ(report_fingerprint(first), report_fingerprint(second))
        << "seed " << seed;

    check::RunOptions heap = opts;
    heap.scheduler = sim::SchedulerKind::kHeap;
    const check::CheckReport h = check::run_seed(seed, heap);
    EXPECT_EQ(report_fingerprint(first), report_fingerprint(h))
        << "heap/wheel divergence at batch 32, seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Burst-boundary edge cases.
// ---------------------------------------------------------------------------

net::Packet packet_on(std::uint16_t vf, std::uint64_t id) {
  net::Packet p;
  p.id = id;
  p.vf_port = vf;
  p.flow_id = vf;
  p.wire_bytes = kFrameBytes;
  return p;
}

TEST(NpBatchEdge, ShortTrailingBurstDrainsCompletely) {
  // 5 waiting packets against batch_size 32 on a single worker: the burst
  // puller must hand over a partial burst immediately, not wait to fill.
  sim::Simulator sim;
  NpConfig cfg;
  cfg.num_vfs = 1;
  cfg.num_workers = 1;
  cfg.batch_size = 32;
  NullProcessor proc;
  NicPipeline pipe(sim, cfg, proc);
  int delivered = 0;
  pipe.set_on_delivered([&](const net::Packet&) { ++delivered; });
  for (std::uint64_t i = 0; i < 5; ++i) pipe.submit(packet_on(0, i));
  sim.run_all();
  EXPECT_EQ(delivered, 5);
  EXPECT_EQ(pipe.stats().processed, 5u);
  EXPECT_EQ(pipe.in_flight(), 0u);
}

/// Per-packet service jitter large enough that two workers' bursts finish
/// out of order, forcing real reorder-buffer traffic.
class JitterProcessor final : public PacketProcessor {
 public:
  Outcome process(net::Packet& pkt, sim::SimTime) override {
    return {true, static_cast<std::uint32_t>(
                      500 + (pkt.id * 2654435761u >> 7) % 30000)};
  }
};

TEST(NpBatchEdge, BurstsStraddlingReorderRingWrapStayOrdered) {
  // Reorder ring sized for capacity 16 + burst slack rounds to 512 slots;
  // 2000 packets wrap the ring ~4 times mid-burst. Delivery must remain
  // strictly in ingress order throughout, and every packet must be
  // accounted delivered or dropped.
  sim::Simulator sim;
  NpConfig cfg;
  cfg.num_vfs = 1;
  cfg.num_workers = 2;
  cfg.batch_size = 32;
  cfg.enforce_reorder = true;
  cfg.reorder_capacity = 16;
  cfg.vf_ring_capacity = 512;
  JitterProcessor proc;
  NicPipeline pipe(sim, cfg, proc);
  EXPECT_EQ(pipe.reorder_window(), 512u);

  std::vector<std::uint64_t> order;
  std::uint64_t dropped = 0;
  pipe.set_on_delivered([&](const net::Packet& p) { order.push_back(p.id); });
  pipe.set_on_dropped([&](const net::Packet&) { ++dropped; });

  constexpr std::uint64_t kTotal = 2000;
  std::uint64_t next = 0;
  // Feed in 250-packet waves so the VF ring never overflows but the
  // workers always have full bursts to pull.
  for (int wave = 0; wave < 8; ++wave) {
    sim.schedule_at(sim::milliseconds(2) * wave, [&pipe, &next] {
      for (int i = 0; i < 250; ++i) pipe.submit(packet_on(0, next++));
    });
  }
  sim.run_all();

  EXPECT_EQ(order.size() + dropped, kTotal);
  EXPECT_GT(order.size(), kTotal / 2);
  for (std::size_t i = 1; i < order.size(); ++i)
    ASSERT_LT(order[i - 1], order[i]) << "out-of-order delivery at index " << i;
  EXPECT_EQ(pipe.in_flight(), 0u);
}

TEST(NpBatchEdge, WatchdogSalvagesWholeInFlightBurst) {
  // A single slow worker picks up one packet, then a full 7-packet burst;
  // crashing it mid-burst must requeue every packet of that burst (watchdog
  // salvage is burst-granular), and the repaired worker must then run the
  // all-retry burst to completion with nothing lost.
  sim::Simulator sim;
  NpConfig cfg;
  cfg.num_vfs = 1;
  cfg.num_workers = 1;
  cfg.batch_size = 32;
  cfg.base_rx_cycles = 60000;
  cfg.base_tx_cycles = 60000;
  cfg.recovery.watchdog_budget = sim::microseconds(150);
  NullProcessor proc;
  NicPipeline pipe(sim, cfg, proc);
  int delivered = 0, dropped = 0;
  pipe.set_on_delivered([&](const net::Packet&) { ++delivered; });
  pipe.set_on_dropped([&](const net::Packet&) { ++dropped; });
  for (std::uint64_t i = 0; i < 8; ++i) pipe.submit(packet_on(0, i));
  // First submit dispatched a 1-packet burst at t=0; the remaining 7 form
  // the second burst. Crash lands inside that second burst's interval
  // (per-packet service ≈ 100 µs ⇒ burst spans [100 µs, 800 µs]).
  sim.schedule_at(sim::microseconds(250), [&] { pipe.fault_crash_worker(0); });
  sim.schedule_at(sim::milliseconds(10), [&] { pipe.repair_worker(0); });
  sim.run_all();
  EXPECT_EQ(pipe.stats().watchdog_requeues, 7u);
  EXPECT_EQ(pipe.stats().workers_repaired, 1u);
  EXPECT_EQ(delivered, 8);
  EXPECT_EQ(dropped, 0);
  EXPECT_EQ(pipe.in_flight(), 0u);
  EXPECT_EQ(pipe.hung_workers(), 0u);
}

TEST(NpBatchEdge, TailDropAtBurstCompletionIsAccountedPerPacket) {
  // Tiny Tx FIFO, crawling wire: when a 32-packet burst commits at one
  // completion instant, the ring admits what fits and tail-drops the rest
  // — all at that same instant, each drop individually accounted.
  sim::Simulator sim;
  NpConfig cfg;
  cfg.num_vfs = 1;
  cfg.num_workers = 1;
  cfg.batch_size = 32;
  cfg.tx_ring_capacity = 4;
  cfg.wire_rate = sim::Rate::gigabits_per_sec(0.05);

  struct TxDropTap final : public PipelineObserver {
    std::vector<sim::SimTime> tx_drop_times;
    void on_drop(const net::Packet&, DropReason reason,
                 sim::SimTime now) override {
      if (reason == DropReason::kTxRingFull) tx_drop_times.push_back(now);
    }
  } tap;

  NullProcessor proc;
  NicPipeline pipe(sim, cfg, proc);
  pipe.set_observer(&tap);
  int delivered = 0;
  pipe.set_on_delivered([&](const net::Packet&) { ++delivered; });
  for (std::uint64_t i = 0; i < 33; ++i) pipe.submit(packet_on(0, i));
  sim.run_all();
  pipe.set_observer(nullptr);

  // Burst #2 (32 packets) overflowed the 4-slot ring in one commit sweep.
  ASSERT_FALSE(tap.tx_drop_times.empty());
  for (sim::SimTime t : tap.tx_drop_times)
    EXPECT_EQ(t, tap.tx_drop_times.front())
        << "burst tail drop smeared across instants";
  EXPECT_EQ(pipe.stats().tx_ring_drops, tap.tx_drop_times.size());
  EXPECT_EQ(static_cast<std::uint64_t>(delivered) + tap.tx_drop_times.size(),
            33u);
}

TEST(NpBatchEdge, ReconfigCutoversLandOnlyAtBurstBoundaries) {
  // A hook that advances the epoch on EVERY boundary call is the harshest
  // possible cutover schedule — a mid-burst cutover would split one
  // burst's packets across two epochs. Stamps must instead show each
  // boundary's fresh-packet count carrying exactly one epoch.
  struct EpochHook final : public ControlHook {
    std::uint32_t next_epoch = 0;
    std::vector<unsigned> boundary_packets;  // fresh count per call
    Cutover on_packet_boundary(unsigned, sim::SimTime,
                               unsigned packets) override {
      boundary_packets.push_back(packets);
      return {++next_epoch, 0};
    }
  } hook;

  struct EpochTap final : public PipelineObserver {
    std::map<std::uint32_t, unsigned> dispatches_per_epoch;
    void on_dispatch(const net::Packet& pkt, unsigned, std::uint64_t,
                     sim::SimTime, sim::SimDuration) override {
      ++dispatches_per_epoch[pkt.policy_epoch];
    }
  } tap;

  sim::Simulator sim;
  NpConfig cfg;
  cfg.num_vfs = 2;
  cfg.num_workers = 2;
  cfg.batch_size = 8;
  NullProcessor proc;
  NicPipeline pipe(sim, cfg, proc);
  pipe.set_control_hook(&hook);
  pipe.set_observer(&tap);

  std::uint64_t next = 0;
  for (int wave = 0; wave < 6; ++wave) {
    sim.schedule_at(sim::microseconds(40) * wave, [&pipe, &next] {
      for (int i = 0; i < 11; ++i)
        pipe.submit(packet_on(static_cast<std::uint16_t>(i % 2), next++));
    });
  }
  sim.run_all();
  pipe.set_observer(nullptr);
  pipe.set_control_hook(nullptr);

  // Every boundary saw at least one fresh packet (all-retry bursts skip
  // the hook), and each epoch's dispatch count equals the fresh count the
  // hook was told at that boundary — i.e. no burst mixed epochs and no
  // packet missed its boundary stamp.
  ASSERT_EQ(tap.dispatches_per_epoch.size(), hook.boundary_packets.size());
  std::uint32_t epoch = 1;
  unsigned total = 0;
  for (unsigned fresh : hook.boundary_packets) {
    EXPECT_GE(fresh, 1u);
    ASSERT_TRUE(tap.dispatches_per_epoch.count(epoch)) << "epoch " << epoch;
    EXPECT_EQ(tap.dispatches_per_epoch[epoch], fresh)
        << "epoch " << epoch << " split across bursts";
    total += fresh;
    ++epoch;
  }
  EXPECT_EQ(total, 66u);
}

TEST(NpBatchEdge, LatencyRecorderSeesPerPacketServiceNotBurstTotal) {
  // Satellite regression: with a constant-cost processor every packet's
  // service segment must equal the per-packet busy slice even at batch 32
  // — if dispatch instants smeared to the burst completion event, service
  // would read as the whole burst interval (~32x) and vf_wait would go
  // negative-clamped-to-zero for most of the burst.
  sim::Simulator sim;
  NpConfig cfg;
  cfg.num_vfs = 1;
  cfg.num_workers = 1;
  cfg.batch_size = 32;
  NullProcessor proc;
  NicPipeline pipe(sim, cfg, proc);

  struct LatencyTap final : public PipelineObserver {
    obs::LatencyRecorder rec;
    std::size_t pending_peak = 0;
    void on_dispatch(const net::Packet& pkt, unsigned, std::uint64_t,
                     sim::SimTime now, sim::SimDuration busy) override {
      rec.on_dispatch(pkt, now, busy);
      pending_peak = std::max(pending_peak, rec.pending());
    }
    void on_drop(const net::Packet& pkt, DropReason, sim::SimTime) override {
      rec.on_drop(pkt);
    }
    void on_delivered(const net::Packet& pkt, sim::SimTime) override {
      rec.on_delivered(pkt);
    }
  } tap;
  pipe.set_observer(&tap);

  for (std::uint64_t i = 0; i < 64; ++i) pipe.submit(packet_on(0, i));
  sim.run_all();
  pipe.set_observer(nullptr);

  const std::uint64_t per_packet =
      static_cast<std::uint64_t>(cfg.cycles_to_ns(
          cfg.base_rx_cycles + cfg.base_tx_cycles));
  const auto& service = tap.rec.segment(obs::Segment::kService);
  ASSERT_EQ(service.count(), 64u);
  EXPECT_EQ(service.min(), per_packet);
  EXPECT_EQ(service.max(), per_packet) << "service smeared to burst total";
  // Within a burst, later packets' logical dispatch instants stagger
  // forward, so their vf_wait includes the queueing behind burst peers and
  // strictly grows across the burst; the recorder's own timestamps must
  // never produce a negative segment (clamped or otherwise).
  EXPECT_EQ(tap.rec.segment(obs::Segment::kVfWait).count(), 64u);
  EXPECT_GE(tap.rec.segment(obs::Segment::kVfWait).max(),
            31 * per_packet);
  // No leak: everything dispatched was eventually delivered and retired.
  EXPECT_EQ(tap.rec.recorded(), 64u);
  EXPECT_EQ(tap.rec.pending(), 0u);
  // A full burst's entries are pending together at its dispatch boundary.
  EXPECT_GE(tap.pending_peak, 32u);
  EXPECT_EQ(pipe.in_flight(), 0u);
}

}  // namespace
}  // namespace flowvalve::np
