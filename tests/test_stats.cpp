// Unit tests for the measurement utilities.
#include <gtest/gtest.h>

#include "stats/series_export.h"
#include "stats/stats.h"

namespace flowvalve::stats {
namespace {

TEST(Ewma, FirstObservationSetsValue) {
  Ewma e(sim::milliseconds(1));
  EXPECT_FALSE(e.has_value());
  e.observe(0, 10.0);
  EXPECT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, HalfLifeDecay) {
  Ewma e(sim::milliseconds(1));
  e.observe(0, 10.0);
  e.observe(sim::milliseconds(1), 0.0);  // one half-life later
  EXPECT_NEAR(e.value(), 5.0, 0.01);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e(sim::milliseconds(1));
  for (int i = 0; i <= 20; ++i) e.observe(sim::milliseconds(i), 7.0);
  EXPECT_NEAR(e.value(), 7.0, 1e-9);
}

TEST(Ewma, ResetClears) {
  Ewma e(sim::milliseconds(1));
  e.observe(0, 10.0);
  e.reset();
  EXPECT_FALSE(e.has_value());
  EXPECT_DOUBLE_EQ(e.value(), 0.0);
}

TEST(RateMeter, MeasuresSteadyRate) {
  RateMeter m(sim::milliseconds(1));
  // 1 MB/ms = 8 Gbps, in 1000-byte packets.
  for (int i = 0; i < 10000; ++i) m.add(i * 1000, 1000);
  EXPECT_NEAR(m.rate(10'000'000).gbps(), 8.0, 0.5);
  EXPECT_EQ(m.total_packets(), 10000u);
  EXPECT_EQ(m.total_bytes(), 10'000'000u);
}

TEST(RateMeter, DecaysWhenIdle) {
  RateMeter m(sim::milliseconds(1));
  for (int i = 0; i < 1000; ++i) m.add(i * 1000, 1000);
  const double busy = m.rate(sim::milliseconds(1)).gbps();
  EXPECT_GT(busy, 1.0);
  EXPECT_LT(m.rate(sim::milliseconds(50)).gbps(), 0.1);
}

TEST(ThroughputSeries, BinsBytes) {
  ThroughputSeries s(sim::milliseconds(100));
  s.add(sim::milliseconds(50), 1000);
  s.add(sim::milliseconds(150), 3000);
  s.add(sim::milliseconds(160), 1000);
  EXPECT_EQ(s.bins(), 2u);
  // Bin 0: 1000 B / 100 ms = 80 kbps.
  EXPECT_NEAR(s.bin_rate(0).kbps(), 80.0, 0.001);
  EXPECT_NEAR(s.bin_rate(1).kbps(), 320.0, 0.001);
  EXPECT_DOUBLE_EQ(s.bin_rate(99).bps(), 0.0);  // out of range → zero
  EXPECT_EQ(s.total_bytes(), 5000u);
}

TEST(ThroughputSeries, MeanRateOverRange) {
  ThroughputSeries s(sim::milliseconds(100));
  for (int bin = 0; bin < 10; ++bin)
    s.add(bin * sim::milliseconds(100) + 1, static_cast<std::uint64_t>(1000 * (bin + 1)));
  // Bins 0..9 hold 1000..10000 bytes. Mean over [2,4): (3000+4000)/2 per 100ms.
  EXPECT_NEAR(s.mean_rate(2, 4).kbps(), 3500 * 8.0 / 100.0 * 1000 / 1000, 0.01);
}

TEST(ThroughputSeries, BinMidSeconds) {
  ThroughputSeries s(sim::milliseconds(100));
  EXPECT_DOUBLE_EQ(s.bin_mid_seconds(0), 0.05);
  EXPECT_DOUBLE_EQ(s.bin_mid_seconds(9), 0.95);
}

TEST(LatencyStats, MeanStddevPercentiles) {
  LatencyStats l;
  for (int us = 1; us <= 100; ++us) l.add(sim::microseconds(us));
  EXPECT_EQ(l.count(), 100u);
  EXPECT_NEAR(l.mean_us(), 50.5, 0.01);
  EXPECT_NEAR(l.percentile_us(50), 50.5, 0.01);
  EXPECT_NEAR(l.percentile_us(99), 99.01, 0.1);
  EXPECT_NEAR(l.min_us(), 1.0, 0.001);
  EXPECT_NEAR(l.max_us(), 100.0, 0.001);
  EXPECT_NEAR(l.stddev_us(), 29.0, 0.2);
}

TEST(LatencyStats, EmptyIsZero) {
  LatencyStats l;
  EXPECT_DOUBLE_EQ(l.mean_us(), 0.0);
  EXPECT_DOUBLE_EQ(l.stddev_us(), 0.0);
  EXPECT_DOUBLE_EQ(l.percentile_us(99), 0.0);
}

TEST(LatencyStats, SingleSample) {
  LatencyStats l;
  l.add(sim::microseconds(42));
  EXPECT_DOUBLE_EQ(l.mean_us(), 42.0);
  EXPECT_DOUBLE_EQ(l.stddev_us(), 0.0);
  EXPECT_DOUBLE_EQ(l.percentile_us(0), 42.0);
  EXPECT_DOUBLE_EQ(l.percentile_us(100), 42.0);
}

TEST(PacketCountersTest, Accounting) {
  PacketCounters c;
  c.on_offered(100);
  c.on_offered(100);
  c.on_forwarded(100);
  c.on_dropped(100);
  EXPECT_EQ(c.offered_packets, 2u);
  EXPECT_EQ(c.forwarded_bytes, 100u);
  EXPECT_DOUBLE_EQ(c.drop_fraction(), 0.5);
  EXPECT_DOUBLE_EQ(PacketCounters{}.drop_fraction(), 0.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter tp({"a", "bbbb"});
  tp.add_row({"xxxxx", "1"});
  const std::string out = tp.to_string();
  EXPECT_NE(out.find("| a     | bbbb |"), std::string::npos);
  EXPECT_NE(out.find("| xxxxx | 1    |"), std::string::npos);
}

TEST(TablePrinterTest, FmtPrecision) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(3.14159, 4), "3.1416");
}

TEST(SeriesExport, CsvShape) {
  ThroughputSeries s(sim::milliseconds(100));
  s.add(sim::milliseconds(50), 12500);  // 1 Mbps bin
  const std::string csv =
      series_to_csv({{"app", &s}}, sim::milliseconds(200));
  EXPECT_NE(csv.find("time_s,app_gbps"), std::string::npos);
  EXPECT_NE(csv.find("0.050,0.0010"), std::string::npos);
}

TEST(SeriesExport, TableContainsTotals) {
  ThroughputSeries a(sim::milliseconds(100));
  ThroughputSeries b(sim::milliseconds(100));
  a.add(1, 125'000'000);  // 10 Gbps over 100ms
  b.add(1, 62'500'000);   // 5 Gbps
  const std::string table = series_to_table({{"a", &a}, {"b", &b}},
                                            sim::milliseconds(100),
                                            sim::milliseconds(100));
  EXPECT_NE(table.find("10.00"), std::string::npos);
  EXPECT_NE(table.find("5.00"), std::string::npos);
  EXPECT_NE(table.find("15.00"), std::string::npos);  // total column
}

}  // namespace
}  // namespace flowvalve::stats
