// Unit tests for the measurement probes (netperf/pktgen stand-ins).
#include <gtest/gtest.h>

#include "host/probes.h"
#include "sim/simulator.h"

namespace flowvalve::host {
namespace {

/// Device with a fixed, known delay — lets the latency probe be validated
/// against ground truth.
class FixedDelayDevice final : public net::EgressDevice {
 public:
  FixedDelayDevice(sim::Simulator& sim, sim::SimDuration delay, unsigned drop_every = 0)
      : sim_(sim), delay_(delay), drop_every_(drop_every) {}

  bool submit(net::Packet pkt) override {
    ++count_;
    if (drop_every_ != 0 && count_ % drop_every_ == 0) {
      notify_drop(pkt);
      return false;
    }
    sim_.schedule_after(delay_, [this, pkt]() mutable {
      pkt.wire_tx_done = sim_.now();
      pkt.delivered_at = sim_.now();
      deliver(pkt);
    });
    return true;
  }

 private:
  sim::Simulator& sim_;
  sim::SimDuration delay_;
  unsigned drop_every_;
  unsigned count_ = 0;
};

traffic::FlowSpec probe_spec(traffic::IdAllocator& ids) {
  traffic::FlowSpec s;
  s.flow_id = ids.next_flow_id();
  s.app_id = 5;
  s.wire_bytes = 256;
  return s;
}

TEST(LatencyProbeTest, MeasuresFixedDelayExactly) {
  sim::Simulator sim;
  FixedDelayDevice dev(sim, sim::microseconds(123));
  traffic::IdAllocator ids;
  traffic::FlowRouter router(dev);
  LatencyProbe probe(sim, router, ids, probe_spec(ids), sim::Rate::megabits_per_sec(10),
                     sim::Rng(1));
  probe.start();
  sim.run_until(sim::milliseconds(100));
  EXPECT_GT(probe.latency().count(), 100u);
  EXPECT_NEAR(probe.latency().mean_us(), 123.0, 0.1);
  EXPECT_NEAR(probe.latency().stddev_us(), 0.0, 0.1);
  EXPECT_EQ(probe.lost(), 0u);
}

TEST(LatencyProbeTest, CountsLosses) {
  sim::Simulator sim;
  FixedDelayDevice dev(sim, sim::microseconds(10), /*drop_every=*/4);
  traffic::IdAllocator ids;
  traffic::FlowRouter router(dev);
  LatencyProbe probe(sim, router, ids, probe_spec(ids), sim::Rate::megabits_per_sec(10),
                     sim::Rng(1));
  probe.start();
  sim.run_until(sim::milliseconds(50));
  EXPECT_GT(probe.lost(), 0u);
  EXPECT_NEAR(static_cast<double>(probe.lost()),
              static_cast<double>(probe.sent()) / 4.0,
              static_cast<double>(probe.sent()) * 0.05);
}

TEST(LatencyProbeTest, StopHalts) {
  sim::Simulator sim;
  FixedDelayDevice dev(sim, sim::microseconds(10));
  traffic::IdAllocator ids;
  traffic::FlowRouter router(dev);
  LatencyProbe probe(sim, router, ids, probe_spec(ids), sim::Rate::megabits_per_sec(10),
                     sim::Rng(1));
  probe.start();
  sim.run_until(sim::milliseconds(10));
  probe.stop();
  const auto sent = probe.sent();
  sim.run_until(sim::milliseconds(30));
  EXPECT_EQ(probe.sent(), sent);
}

TEST(SaturationLoadTest, OffersAtConfiguredAggregateRate) {
  sim::Simulator sim;
  FixedDelayDevice dev(sim, sim::microseconds(5));
  traffic::IdAllocator ids;
  traffic::FlowRouter router(dev);
  SaturationLoad::Config cfg;
  cfg.num_flows = 8;
  cfg.wire_bytes = 64;
  cfg.offered = sim::Rate::gigabits_per_sec(10);
  SaturationLoad load(sim, router, ids, cfg, sim::Rng(2));
  load.start();
  sim.run_until(sim::milliseconds(10));
  // 10G at 84 wire bytes → 14.88 Mpps → 148.8k packets in 10 ms.
  EXPECT_NEAR(static_cast<double>(load.sent()), 148800.0, 1500.0);
}

TEST(SaturationLoadTest, MeasuresDeliveredMppsAfterWarmup) {
  sim::Simulator sim;
  FixedDelayDevice dev(sim, sim::microseconds(5));
  traffic::IdAllocator ids;
  traffic::FlowRouter router(dev);
  SaturationLoad::Config cfg;
  cfg.num_flows = 4;
  cfg.wire_bytes = 64;
  cfg.offered = sim::Rate::gigabits_per_sec(10);
  SaturationLoad load(sim, router, ids, cfg, sim::Rng(2));
  load.start();
  sim.run_until(sim::milliseconds(5));
  load.begin_measurement();
  sim.run_until(sim::milliseconds(15));
  // Everything is delivered: measured ≈ offered pps = 14.88 Mpps.
  EXPECT_NEAR(load.delivered_mpps(sim::milliseconds(15)), 14.88, 0.3);
}

TEST(SaturationLoadTest, SpreadsFlowsOverVfs) {
  sim::Simulator sim;
  FixedDelayDevice dev(sim, sim::microseconds(5));
  traffic::IdAllocator ids;
  traffic::FlowRouter router(dev);
  SaturationLoad::Config cfg;
  cfg.num_flows = 8;
  cfg.num_vfs = 4;
  cfg.offered = sim::Rate::gigabits_per_sec(1);
  SaturationLoad load(sim, router, ids, cfg, sim::Rng(2));
  load.start();
  // Intercept the next layer: count VFs seen.
  std::array<int, 4> seen{};
  dev.set_on_delivered([&](const net::Packet& p) { ++seen[p.vf_port % 4]; });
  sim.run_until(sim::milliseconds(5));
  for (int i = 0; i < 4; ++i) EXPECT_GT(seen[static_cast<std::size_t>(i)], 0);
}

}  // namespace
}  // namespace flowvalve::host
