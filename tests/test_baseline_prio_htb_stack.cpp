// The actual Fig. 3 tc structure: a PRIO root qdisc whose band 0 carries the
// network controller and whose band 1 holds a chained HTB tree — end to end
// through the kernel host model. (PrioQdisc bands are arbitrary child
// qdiscs, so the HTB nests directly.)
#include <gtest/gtest.h>

#include <memory>

#include "baseline/htb.h"
#include "baseline/kernel_host.h"
#include "baseline/prio.h"
#include "sim/simulator.h"

namespace flowvalve::baseline {
namespace {

using sim::Rate;

net::Packet packet_for(std::uint32_t app, std::uint32_t bytes = 64 * 1024) {
  net::Packet p;
  p.app_id = app;
  p.flow_id = app;
  p.wire_bytes = bytes;
  return p;
}

std::unique_ptr<PrioQdisc> make_stack() {
  // Band 1: HTB with two weighted tenants under a 10G root.
  HtbArtifacts artifacts;  // idealized here; artifacts tested elsewhere
  auto htb = std::make_unique<HtbQdisc>(Rate::gigabits_per_sec(10),
                                        Rate::gigabits_per_sec(10), artifacts);
  HtbClassConfig a;
  a.name = "vm1";
  a.rate = Rate::gigabits_per_sec(6);
  a.ceil = Rate::gigabits_per_sec(10);
  a.queue_limit = 32;
  htb->add_class(a);
  HtbClassConfig b;
  b.name = "vm2";
  b.rate = Rate::gigabits_per_sec(3);
  b.ceil = Rate::gigabits_per_sec(10);
  b.queue_limit = 32;
  htb->add_class(b);
  htb->set_classifier(
      [](const net::Packet& p) { return p.app_id == 1 ? "vm1" : "vm2"; });

  std::vector<std::unique_ptr<Qdisc>> bands;
  bands.push_back(std::make_unique<FifoQdisc>(64));  // band 0: NC
  bands.push_back(std::move(htb));                   // band 1: tenants
  return std::make_unique<PrioQdisc>(
      std::move(bands),
      [](const net::Packet& p) { return p.app_id == 0 ? 0 : 1; });
}

TEST(PrioHtbStack, NcBandPreemptsTenants) {
  // Direct qdisc-level check: with both bands backlogged, every dequeue
  // serves band 0 first.
  auto stack = make_stack();
  sim::SimTime now = 0;
  for (int i = 0; i < 8; ++i) {
    stack->enqueue(packet_for(1, 1518), now);
    stack->enqueue(packet_for(0, 1518), now);
  }
  for (int i = 0; i < 8; ++i) {
    auto pkt = stack->dequeue(now);
    ASSERT_TRUE(pkt.has_value());
    EXPECT_EQ(pkt->app_id, 0u) << i;
  }
  EXPECT_EQ(stack->dequeue(now)->app_id, 1u);
}

TEST(PrioHtbStack, HtbShapingStillAppliesInsideBand) {
  auto stack = make_stack();
  // Only vm1 backlogged: HTB lets it borrow to the 10G root but not beyond.
  sim::SimTime now = 0;
  std::uint64_t bytes = 0;
  const Rate wire = Rate::gigabits_per_sec(40);
  const sim::SimDuration horizon = sim::milliseconds(50);
  while (now < horizon) {
    while (stack->backlog_packets() < 16) stack->enqueue(packet_for(1, 1518), now);
    if (auto pkt = stack->dequeue(now)) {
      bytes += pkt->wire_bytes;
      now += wire.serialization_delay(pkt->wire_occupancy_bytes());
    } else {
      now = std::max(stack->next_event(now), now + 100);
    }
  }
  const double gbps = static_cast<double>(bytes) * 8.0 / static_cast<double>(horizon);
  EXPECT_NEAR(gbps, 10.0, 0.7);
}

TEST(PrioHtbStack, EndToEndThroughKernelHost) {
  // Through the full kernel host: NC (band 0) keeps its low-rate stream
  // intact while both tenants saturate the HTB band.
  sim::Simulator sim;
  KernelHostConfig cfg;
  cfg.sender_cores = 4;
  cfg.wire_rate = Rate::gigabits_per_sec(40);
  KernelHostDevice dev(sim, cfg, make_stack());
  std::uint64_t delivered[3] = {};
  dev.set_on_delivered([&](const net::Packet& p) { delivered[p.app_id % 3] += p.wire_bytes; });

  // NC: 500 Mbps of 1518 B control messages; tenants: 8G each of GSO skbs.
  const double nc_gap = 1518.0 * 8e9 / 0.5e9;
  const double tenant_gap = 65536.0 * 8e9 / 8e9;
  for (double t = 0; t < sim::milliseconds(200); t += nc_gap)
    sim.schedule_at(static_cast<sim::SimTime>(t),
                    [&dev] { dev.submit(packet_for(0, 1518)); });
  for (double t = 0; t < sim::milliseconds(200); t += tenant_gap) {
    sim.schedule_at(static_cast<sim::SimTime>(t), [&dev] {
      dev.submit(packet_for(1));
      dev.submit(packet_for(2));
    });
  }
  sim.run_until(sim::milliseconds(220));

  const double nc_gbps = static_cast<double>(delivered[0]) * 8.0 / sim::milliseconds(200);
  const double vm_total =
      static_cast<double>(delivered[1] + delivered[2]) * 8.0 / sim::milliseconds(200);
  // NC's stream passes essentially untouched (strict band 0).
  EXPECT_NEAR(nc_gbps, 0.5, 0.05);
  // Tenants are HTB-bound near the 10G root.
  EXPECT_NEAR(vm_total, 10.0, 1.2);
  // vm1:vm2 follow their HTB rates roughly 2:1.
  EXPECT_NEAR(static_cast<double>(delivered[1]) / static_cast<double>(delivered[2]),
              2.0, 0.5);
}

}  // namespace
}  // namespace flowvalve::baseline
