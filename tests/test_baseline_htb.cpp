// Unit tests for the HTB baseline: shaping, borrowing, DRR, priorities, and
// the modeled kernel artifacts.
#include <gtest/gtest.h>

#include "baseline/htb.h"

namespace flowvalve::baseline {
namespace {

using sim::Rate;

net::Packet packet_for(std::uint32_t app, std::uint32_t bytes = 1518) {
  net::Packet p;
  p.app_id = app;
  p.wire_bytes = bytes;
  return p;
}

std::function<std::string(const net::Packet&)> app_classifier() {
  return [](const net::Packet& p) { return "c" + std::to_string(p.app_id); };
}

HtbQdisc make_two_class(Rate root, Rate r0, Rate c0, Rate r1, Rate c1,
                        HtbArtifacts artifacts = {}) {
  HtbQdisc htb(root, root, artifacts);
  HtbClassConfig a;
  a.name = "c0";
  a.rate = r0;
  a.ceil = c0;
  htb.add_class(a);
  HtbClassConfig b;
  b.name = "c1";
  b.rate = r1;
  b.ceil = c1;
  htb.add_class(b);
  htb.set_classifier(app_classifier());
  return htb;
}

/// Keep a leaf backlogged and drain the qdisc at wire pace; returns the
/// drained rate of each class in Gbps.
struct DrainResult {
  double rate0 = 0, rate1 = 0;
};
DrainResult drain(HtbQdisc& htb, bool feed0, bool feed1, sim::SimDuration horizon,
                  Rate wire = Rate::gigabits_per_sec(40)) {
  sim::SimTime now = 0;
  std::uint64_t got0 = 0, got1 = 0;
  while (now < horizon) {
    // Keep queues topped up.
    while (feed0 && htb.class_stats("c0").enq_packets - htb.class_stats("c0").deq_packets -
                            htb.class_stats("c0").drops <
                        16)
      htb.enqueue(packet_for(0), now);
    while (feed1 && htb.class_stats("c1").enq_packets - htb.class_stats("c1").deq_packets -
                            htb.class_stats("c1").drops <
                        16)
      htb.enqueue(packet_for(1), now);

    auto pkt = htb.dequeue(now);
    if (pkt) {
      if (pkt->app_id == 0) got0 += pkt->wire_bytes;
      else got1 += pkt->wire_bytes;
      now += wire.serialization_delay(pkt->wire_occupancy_bytes());
    } else {
      const sim::SimTime next = htb.next_event(now);
      now = std::max(next == sim::kSimTimeMax ? now + 1000 : next, now + 100);
    }
  }
  DrainResult r;
  r.rate0 = static_cast<double>(got0) * 8.0 / static_cast<double>(horizon);
  r.rate1 = static_cast<double>(got1) * 8.0 / static_cast<double>(horizon);
  return r;
}

TEST(HtbQdiscTest, SingleClassShapedToRate) {
  auto htb = make_two_class(Rate::gigabits_per_sec(10), Rate::gigabits_per_sec(2),
                            Rate::gigabits_per_sec(2), Rate::gigabits_per_sec(2),
                            Rate::gigabits_per_sec(2));
  const auto r = drain(htb, true, false, sim::milliseconds(50));
  EXPECT_NEAR(r.rate0, 2.0, 0.15);
}

TEST(HtbQdiscTest, BorrowUpToCeil) {
  // c0 rate 2 ceil 8 under a 8G root: alone it borrows to ~8.
  auto htb = make_two_class(Rate::gigabits_per_sec(8), Rate::gigabits_per_sec(2),
                            Rate::gigabits_per_sec(8), Rate::gigabits_per_sec(2),
                            Rate::gigabits_per_sec(8));
  const auto r = drain(htb, true, false, sim::milliseconds(50));
  EXPECT_NEAR(r.rate0, 8.0, 0.5);
  EXPECT_GT(htb.class_stats("c0").borrowed_bytes, 0u);
}

TEST(HtbQdiscTest, CeilCapsBorrowing) {
  auto htb = make_two_class(Rate::gigabits_per_sec(10), Rate::gigabits_per_sec(2),
                            Rate::gigabits_per_sec(5), Rate::gigabits_per_sec(2),
                            Rate::gigabits_per_sec(10));
  const auto r = drain(htb, true, false, sim::milliseconds(50));
  EXPECT_NEAR(r.rate0, 5.0, 0.3);
}

TEST(HtbQdiscTest, SiblingsShareExcessEvenly) {
  auto htb = make_two_class(Rate::gigabits_per_sec(10), Rate::gigabits_per_sec(2),
                            Rate::gigabits_per_sec(10), Rate::gigabits_per_sec(2),
                            Rate::gigabits_per_sec(10));
  const auto r = drain(htb, true, true, sim::milliseconds(50));
  EXPECT_NEAR(r.rate0 + r.rate1, 10.0, 0.6);
  EXPECT_NEAR(r.rate0, r.rate1, 1.0);
}

TEST(HtbQdiscTest, RootCeilBindsTotal) {
  auto htb = make_two_class(Rate::gigabits_per_sec(6), Rate::gigabits_per_sec(1),
                            Rate::gigabits_per_sec(6), Rate::gigabits_per_sec(1),
                            Rate::gigabits_per_sec(6));
  const auto r = drain(htb, true, true, sim::milliseconds(50));
  EXPECT_NEAR(r.rate0 + r.rate1, 6.0, 0.4);
}

TEST(HtbQdiscTest, PriorityWinsBorrowingWithoutArtifacts) {
  HtbQdisc htb(Rate::gigabits_per_sec(10), Rate::gigabits_per_sec(10));
  HtbClassConfig a;
  a.name = "c0";
  a.rate = Rate::gigabits_per_sec(2);
  a.ceil = Rate::gigabits_per_sec(10);
  a.prio = 0;
  htb.add_class(a);
  HtbClassConfig b;
  b.name = "c1";
  b.rate = Rate::gigabits_per_sec(2);
  b.ceil = Rate::gigabits_per_sec(10);
  b.prio = 1;
  htb.add_class(b);
  htb.set_classifier(app_classifier());
  const auto r = drain(htb, true, true, sim::milliseconds(50));
  // c0 borrows all the excess: ~8 vs c1's guaranteed 2.
  EXPECT_GT(r.rate0, 6.5);
  EXPECT_NEAR(r.rate1, 2.0, 0.5);
}

TEST(HtbQdiscTest, PrioBlindArtifactEqualizes) {
  HtbArtifacts artifacts;
  artifacts.enabled = true;
  artifacts.charge_factor = 1.0;  // isolate the prio-blind effect
  HtbQdisc htb(Rate::gigabits_per_sec(10), Rate::gigabits_per_sec(10), artifacts);
  HtbClassConfig a;
  a.name = "c0";
  a.rate = Rate::gigabits_per_sec(2);
  a.ceil = Rate::gigabits_per_sec(10);
  a.prio = 0;
  htb.add_class(a);
  HtbClassConfig b;
  b.name = "c1";
  b.rate = Rate::gigabits_per_sec(2);
  b.ceil = Rate::gigabits_per_sec(10);
  b.prio = 1;
  htb.add_class(b);
  htb.set_classifier(app_classifier());
  const auto r = drain(htb, true, true, sim::milliseconds(50));
  // The paper's Fig. 3 observation: equal split despite priorities.
  EXPECT_NEAR(r.rate0, r.rate1, 1.2);
}

TEST(HtbQdiscTest, ChargeQuantizationOvershootsCeil) {
  HtbArtifacts artifacts;
  artifacts.enabled = true;  // default 256 B cells
  auto htb = make_two_class(Rate::gigabits_per_sec(10), Rate::gigabits_per_sec(5),
                            Rate::gigabits_per_sec(10), Rate::gigabits_per_sec(5),
                            Rate::gigabits_per_sec(10), artifacts);
  const auto r = drain(htb, true, true, sim::milliseconds(50));
  // 1518 B charges as 1280 B → ~18% undercharge → ≈11.9G on a 10G ceiling.
  EXPECT_GT(r.rate0 + r.rate1, 11.0);
  EXPECT_LT(r.rate0 + r.rate1, 12.8);
}

TEST(HtbQdiscTest, ChargeFactorOverride) {
  HtbArtifacts artifacts;
  artifacts.enabled = true;
  artifacts.charge_factor = 0.5;
  auto htb = make_two_class(Rate::gigabits_per_sec(5), Rate::gigabits_per_sec(2.5),
                            Rate::gigabits_per_sec(5), Rate::gigabits_per_sec(2.5),
                            Rate::gigabits_per_sec(5), artifacts);
  const auto r = drain(htb, true, false, sim::milliseconds(50));
  // Everything undercharged 2x → measured ≈ 2x the ceiling.
  EXPECT_NEAR(r.rate0, 10.0, 1.0);
}

TEST(HtbQdiscTest, QueueLimitDrops) {
  HtbQdisc htb(Rate::gigabits_per_sec(1), Rate::gigabits_per_sec(1));
  HtbClassConfig a;
  a.name = "c0";
  a.rate = Rate::gigabits_per_sec(1);
  a.queue_limit = 4;
  htb.add_class(a);
  htb.set_classifier(app_classifier());
  for (int i = 0; i < 10; ++i) htb.enqueue(packet_for(0), 0);
  EXPECT_EQ(htb.backlog_packets(), 4u);
  EXPECT_EQ(htb.class_stats("c0").drops, 6u);
}

TEST(HtbQdiscTest, UnknownClassRejected) {
  auto htb = make_two_class(Rate::gigabits_per_sec(1), Rate::gigabits_per_sec(1),
                            Rate::gigabits_per_sec(1), Rate::gigabits_per_sec(1),
                            Rate::gigabits_per_sec(1));
  EXPECT_FALSE(htb.enqueue(packet_for(7), 0));
}

TEST(HtbQdiscTest, NextEventAdvancesWhenThrottled) {
  auto htb = make_two_class(Rate::megabits_per_sec(100), Rate::megabits_per_sec(100),
                            Rate::megabits_per_sec(100), Rate::megabits_per_sec(100),
                            Rate::megabits_per_sec(100));
  sim::SimTime now = 0;
  // Exhaust the burst.
  for (int i = 0; i < 40; ++i) htb.enqueue(packet_for(0), now);
  while (htb.dequeue(now)) {
  }
  EXPECT_GT(htb.backlog_packets(), 0u);
  const sim::SimTime next = htb.next_event(now);
  EXPECT_GT(next, now);
  EXPECT_NE(next, sim::kSimTimeMax);
}

TEST(HtbQdiscTest, WatchdogTickRoundsUp) {
  HtbArtifacts artifacts;
  artifacts.enabled = true;
  artifacts.charge_factor = 1.0;
  artifacts.watchdog_tick = sim::milliseconds(1);
  auto htb = make_two_class(Rate::megabits_per_sec(100), Rate::megabits_per_sec(100),
                            Rate::megabits_per_sec(100), Rate::megabits_per_sec(100),
                            Rate::megabits_per_sec(100), artifacts);
  sim::SimTime now = 12345;
  for (int i = 0; i < 40; ++i) htb.enqueue(packet_for(0), now);
  while (htb.dequeue(now)) {
  }
  const sim::SimTime next = htb.next_event(now);
  EXPECT_EQ(next % sim::milliseconds(1), 0);
}

TEST(HtbQdiscTest, DuplicateClassThrows) {
  HtbQdisc htb(Rate::gigabits_per_sec(1), Rate::gigabits_per_sec(1));
  HtbClassConfig a;
  a.name = "x";
  a.rate = Rate::gigabits_per_sec(1);
  htb.add_class(a);
  EXPECT_THROW(htb.add_class(a), std::invalid_argument);
}

TEST(HtbQdiscTest, EmptyDequeueReturnsNothing) {
  auto htb = make_two_class(Rate::gigabits_per_sec(1), Rate::gigabits_per_sec(1),
                            Rate::gigabits_per_sec(1), Rate::gigabits_per_sec(1),
                            Rate::gigabits_per_sec(1));
  EXPECT_FALSE(htb.dequeue(0).has_value());
  EXPECT_EQ(htb.next_event(0), sim::kSimTimeMax);
}

}  // namespace
}  // namespace flowvalve::baseline
