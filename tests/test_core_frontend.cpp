// Unit tests for the fv command front end (paper §III-E).
#include <gtest/gtest.h>

#include "core/frontend.h"

namespace flowvalve::core {
namespace {

TEST(ParseRate, Units) {
  EXPECT_DOUBLE_EQ(parse_rate("10gbit").gbps(), 10.0);
  EXPECT_DOUBLE_EQ(parse_rate("2.5gbit").gbps(), 2.5);
  EXPECT_DOUBLE_EQ(parse_rate("500mbit").mbps(), 500.0);
  EXPECT_DOUBLE_EQ(parse_rate("8kbit").kbps(), 8.0);
  EXPECT_DOUBLE_EQ(parse_rate("64bit").bps(), 64.0);
  EXPECT_DOUBLE_EQ(parse_rate("100bps").bps(), 100.0);
}

TEST(ParseRate, CaseInsensitiveUnit) {
  EXPECT_DOUBLE_EQ(parse_rate("10Gbit").gbps(), 10.0);
  EXPECT_DOUBLE_EQ(parse_rate("10GBIT").gbps(), 10.0);
}

TEST(ParseRate, Errors) {
  EXPECT_THROW(parse_rate("gbit"), std::invalid_argument);
  EXPECT_THROW(parse_rate("10parsec"), std::invalid_argument);
  EXPECT_THROW(parse_rate("10"), std::invalid_argument);
}

TEST(ParseIpv4, DottedQuad) {
  EXPECT_EQ(parse_ipv4("10.0.0.1"), 0x0a000001u);
  EXPECT_EQ(parse_ipv4("255.255.255.255"), 0xffffffffu);
  EXPECT_EQ(parse_ipv4("0.0.0.0"), 0u);
}

TEST(ParseIpv4, Errors) {
  EXPECT_THROW(parse_ipv4("10.0.0"), std::invalid_argument);
  EXPECT_THROW(parse_ipv4("10.0.0.256"), std::invalid_argument);
  EXPECT_THROW(parse_ipv4("a.b.c.d"), std::invalid_argument);
}

const char* kBasicScript = R"(
# root + two classes
fv qdisc add dev nic0 root handle 1: htb rate 10gbit
fv class add dev nic0 parent 1: classid 1:10 name gold weight 3
fv class add dev nic0 parent 1: classid 1:11 name silver weight 1
fv borrow add dev nic0 classid 1:10 from 1:11
fv filter add dev nic0 pref 10 vf 0 classid 1:10
fv filter add dev nic0 pref 20 vf 1 classid 1:11
)";

TEST(Frontend, BuildsTreeFromScript) {
  FvFrontend fe;
  fe.apply_script(kBasicScript);
  ASSERT_EQ(fe.finalize(), "");
  EXPECT_TRUE(fe.finalized());
  const SchedulingTree& tree = fe.tree();
  EXPECT_EQ(tree.size(), 3u);
  const ClassId gold = tree.find("gold");
  ASSERT_NE(gold, kNoClass);
  EXPECT_DOUBLE_EQ(tree.at(gold).policy.weight, 3.0);
  EXPECT_DOUBLE_EQ(tree.at(tree.root()).policy.ceil.gbps(), 10.0);
}

TEST(Frontend, ResolvesClassids) {
  FvFrontend fe;
  fe.apply_script(kBasicScript);
  ASSERT_EQ(fe.finalize(), "");
  EXPECT_EQ(fe.resolve_classid("1:10"), fe.tree().find("gold"));
  EXPECT_EQ(fe.resolve_classid("1:"), fe.tree().root());
  EXPECT_EQ(fe.resolve_classid("9:99"), kNoClass);
}

TEST(Frontend, AssignsLabelsToLeaves) {
  FvFrontend fe;
  fe.apply_script(kBasicScript);
  ASSERT_EQ(fe.finalize(), "");
  const auto gold_label = fe.label_of("gold");
  ASSERT_NE(gold_label, net::kUnclassified);
  const QosLabel& label = fe.labels().get(gold_label);
  ASSERT_EQ(label.path.size(), 2u);
  EXPECT_EQ(label.path.back(), fe.tree().find("gold"));
  // Borrow label resolved from "1:11".
  ASSERT_EQ(label.borrow.size(), 1u);
  EXPECT_EQ(label.borrow.front(), fe.tree().find("silver"));
}

TEST(Frontend, FiltersClassifyByVf) {
  FvFrontend fe;
  fe.apply_script(kBasicScript);
  ASSERT_EQ(fe.finalize(), "");
  net::Packet p;
  p.vf_port = 0;
  EXPECT_EQ(fe.classifier().classify(p, 1).label, fe.label_of("gold"));
  p.vf_port = 1;
  EXPECT_EQ(fe.classifier().classify(p, 2).label, fe.label_of("silver"));
}

TEST(Frontend, ClassOptionsParsed) {
  FvFrontend fe;
  fe.apply("fv qdisc add dev nic0 root handle 1: htb rate 10gbit");
  fe.apply(
      "fv class add dev nic0 parent 1: classid 1:10 name x prio 2 weight 4 "
      "ceil 5gbit guarantee 1gbit");
  ASSERT_EQ(fe.finalize(), "");
  const SchedClass& c = fe.tree().at(fe.tree().find("x"));
  EXPECT_EQ(c.policy.prio, 2);
  EXPECT_DOUBLE_EQ(c.policy.weight, 4.0);
  EXPECT_DOUBLE_EQ(c.policy.ceil.gbps(), 5.0);
  EXPECT_DOUBLE_EQ(c.policy.guarantee.gbps(), 1.0);
}

TEST(Frontend, HtbRateMapsToWeight) {
  // tc-HTB style: classes declared with `rate` get proportional weights.
  FvFrontend fe;
  fe.apply("fv qdisc add dev nic0 root handle 1: htb rate 10gbit");
  fe.apply("fv class add dev nic0 parent 1: classid 1:10 name a rate 6gbit");
  fe.apply("fv class add dev nic0 parent 1: classid 1:11 name b rate 3gbit");
  ASSERT_EQ(fe.finalize(), "");
  const double wa = fe.tree().at(fe.tree().find("a")).policy.weight;
  const double wb = fe.tree().at(fe.tree().find("b")).policy.weight;
  EXPECT_NEAR(wa / wb, 2.0, 1e-9);
}

TEST(Frontend, NestedHierarchy) {
  FvFrontend fe;
  fe.apply("fv qdisc add dev nic0 root handle 1: htb rate 10gbit");
  fe.apply("fv class add dev nic0 parent 1: classid 1:1 name inner weight 1");
  fe.apply("fv class add dev nic0 parent 1:1 classid 1:10 name leaf weight 1");
  ASSERT_EQ(fe.finalize(), "");
  const QosLabel& label = fe.labels().get(fe.label_of("leaf"));
  EXPECT_EQ(label.path.size(), 3u);
}

TEST(Frontend, FilterWithTupleFields) {
  FvFrontend fe;
  fe.apply("fv qdisc add dev nic0 root handle 1: htb rate 10gbit");
  fe.apply("fv class add dev nic0 parent 1: classid 1:10 name web weight 1");
  fe.apply(
      "fv filter add dev nic0 pref 1 proto tcp src 10.0.0.0/8 dport 80 classid 1:10");
  ASSERT_EQ(fe.finalize(), "");
  net::Packet p;
  p.tuple.src_ip = 0x0a112233;
  p.tuple.dst_port = 80;
  p.tuple.proto = net::IpProto::kTcp;
  EXPECT_EQ(fe.classifier().classify(p, 1).label, fe.label_of("web"));
  p.tuple.dst_port = 22;
  EXPECT_EQ(fe.classifier().classify(p, 2).label, net::kUnclassified);
}

TEST(Frontend, DefaultClassCatchesUnmatched) {
  FvFrontend fe;
  fe.apply("fv qdisc add dev nic0 root handle 1: htb rate 10gbit default 1:30");
  fe.apply("fv class add dev nic0 parent 1: classid 1:30 name besteffort weight 1");
  ASSERT_EQ(fe.finalize(), "");
  net::Packet p;
  p.vf_port = 9;
  EXPECT_EQ(fe.classifier().classify(p, 1).label, fe.label_of("besteffort"));
}

// ---- error handling --------------------------------------------------------

TEST(FrontendErrors, QdiscNeedsRate) {
  FvFrontend fe;
  EXPECT_THROW(fe.apply("fv qdisc add dev nic0 root handle 1: htb"),
               std::invalid_argument);
}

TEST(FrontendErrors, DuplicateRoot) {
  FvFrontend fe;
  fe.apply("fv qdisc add dev nic0 root handle 1: htb rate 10gbit");
  EXPECT_THROW(fe.apply("fv qdisc add dev nic0 root handle 2: htb rate 1gbit"),
               std::invalid_argument);
}

TEST(FrontendErrors, UnknownParent) {
  FvFrontend fe;
  fe.apply("fv qdisc add dev nic0 root handle 1: htb rate 10gbit");
  EXPECT_THROW(
      fe.apply("fv class add dev nic0 parent 9: classid 1:10 name x weight 1"),
      std::invalid_argument);
}

TEST(FrontendErrors, DuplicateClassid) {
  FvFrontend fe;
  fe.apply("fv qdisc add dev nic0 root handle 1: htb rate 10gbit");
  fe.apply("fv class add dev nic0 parent 1: classid 1:10 name a weight 1");
  EXPECT_THROW(
      fe.apply("fv class add dev nic0 parent 1: classid 1:10 name b weight 1"),
      std::invalid_argument);
}

TEST(FrontendErrors, UnknownObject) {
  FvFrontend fe;
  EXPECT_THROW(fe.apply("fv zebra add dev nic0"), std::invalid_argument);
}

TEST(FrontendErrors, OnlyAddSupported) {
  FvFrontend fe;
  EXPECT_THROW(fe.apply("fv qdisc del dev nic0 root"), std::invalid_argument);
}

TEST(FrontendErrors, FilterToNonLeafReportedAtFinalize) {
  FvFrontend fe;
  fe.apply("fv qdisc add dev nic0 root handle 1: htb rate 10gbit");
  fe.apply("fv class add dev nic0 parent 1: classid 1:1 name inner weight 1");
  fe.apply("fv class add dev nic0 parent 1:1 classid 1:10 name leaf weight 1");
  fe.apply("fv filter add dev nic0 pref 1 vf 0 classid 1:1");
  EXPECT_NE(fe.finalize().find("non-leaf"), std::string::npos);
}

TEST(FrontendErrors, BorrowUnknownLenderReportedAtFinalize) {
  FvFrontend fe;
  fe.apply("fv qdisc add dev nic0 root handle 1: htb rate 10gbit");
  fe.apply("fv class add dev nic0 parent 1: classid 1:10 name a weight 1");
  fe.apply("fv borrow add dev nic0 classid 1:10 from 1:99");
  EXPECT_NE(fe.finalize().find("unknown classid"), std::string::npos);
}

TEST(FrontendErrors, NoRoot) {
  FvFrontend fe;
  EXPECT_NE(fe.finalize().find("no root"), std::string::npos);
}

}  // namespace
}  // namespace flowvalve::core

namespace flowvalve::core {
namespace {

// ---- qdisc chaining (§IV-A) -------------------------------------------------

TEST(FrontendChaining, PrioQdiscExpandsToBands) {
  FvFrontend fe;
  fe.apply("fv qdisc add dev nic0 root handle 1: prio bands 3 rate 10gbit");
  ASSERT_EQ(fe.finalize(), "");
  // Three leaf bands with ascending priorities under the root.
  for (unsigned b = 0; b < 3; ++b) {
    const ClassId id = fe.resolve_classid("1:" + std::to_string(b));
    ASSERT_NE(id, kNoClass) << b;
    EXPECT_EQ(fe.tree().at(id).policy.prio, b);
    EXPECT_TRUE(fe.tree().at(id).is_leaf());
  }
}

TEST(FrontendChaining, HtbUnderPrioBand) {
  // The paper's Fig. 3 style stack: PRIO root, HTB chained under band 1.
  FvFrontend fe;
  fe.apply_script(R"(
    fv qdisc add dev nic0 root handle 1: prio bands 2 rate 10gbit
    fv qdisc add dev nic0 parent 1:1 handle 2: htb
    fv class add dev nic0 parent 2: classid 2:10 name vm1 weight 2
    fv class add dev nic0 parent 2: classid 2:11 name vm2 weight 1
    fv filter add dev nic0 pref 1 vf 0 classid 1:0
    fv filter add dev nic0 pref 2 vf 1 classid 2:10
    fv filter add dev nic0 pref 3 vf 2 classid 2:11
  )");
  ASSERT_EQ(fe.finalize(), "");
  // vm1 nests under band 1: path root → band1 → vm1.
  const auto& label = fe.labels().get(fe.label_of("vm1"));
  ASSERT_EQ(label.path.size(), 3u);
  EXPECT_EQ(label.path[1], fe.resolve_classid("1:1"));
  // Band 0 is a prio-0 leaf preempting the HTB subtree.
  const ClassId band0 = fe.resolve_classid("1:0");
  EXPECT_LT(fe.tree().at(band0).policy.prio,
            fe.tree().at(fe.resolve_classid("1:1")).policy.prio);
}

TEST(FrontendChaining, DuplicateHandleRejected) {
  FvFrontend fe;
  fe.apply("fv qdisc add dev nic0 root handle 1: htb rate 10gbit");
  EXPECT_THROW(
      fe.apply("fv qdisc add dev nic0 parent 1: handle 1: htb"),
      std::invalid_argument);
}

TEST(FrontendChaining, UnknownParentRejected) {
  FvFrontend fe;
  fe.apply("fv qdisc add dev nic0 root handle 1: htb rate 10gbit");
  EXPECT_THROW(fe.apply("fv qdisc add dev nic0 parent 9:9 handle 2: htb"),
               std::invalid_argument);
}

}  // namespace
}  // namespace flowvalve::core
