// Unit tests for wire-format header construction/parsing and packet basics.
#include <gtest/gtest.h>

#include "net/headers.h"
#include "net/packet.h"

namespace flowvalve::net {
namespace {

FiveTuple tcp_tuple() {
  FiveTuple t;
  t.src_ip = 0x0a000001;
  t.dst_ip = 0x0a000002;
  t.src_port = 31337;
  t.dst_port = 443;
  t.proto = IpProto::kTcp;
  return t;
}

TEST(FiveTupleTest, EqualityAndHash) {
  FiveTuple a = tcp_tuple();
  FiveTuple b = tcp_tuple();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.dst_port = 80;
  EXPECT_NE(a, b);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(FiveTupleTest, HashAvalanche) {
  // Flipping any single field should change the hash.
  const FiveTuple base = tcp_tuple();
  FiveTuple t = base;
  t.src_ip ^= 1;
  EXPECT_NE(t.hash(), base.hash());
  t = base;
  t.src_port ^= 1;
  EXPECT_NE(t.hash(), base.hash());
  t = base;
  t.proto = IpProto::kUdp;
  EXPECT_NE(t.hash(), base.hash());
}

TEST(FiveTupleTest, ToString) {
  EXPECT_EQ(tcp_tuple().to_string(), "10.0.0.1:31337->10.0.0.2:443/6");
}

TEST(PacketTest, WireOccupancyAddsPreambleAndIfg) {
  Packet p;
  p.wire_bytes = 64;
  EXPECT_EQ(p.wire_occupancy_bytes(), 84u);
}

TEST(PacketTest, LineRatePpsMatches40GbE) {
  // Classic numbers: 40GbE 64B → 59.52 Mpps; 1518B → 3.25 Mpps.
  EXPECT_NEAR(line_rate_pps(sim::Rate::gigabits_per_sec(40), 64) / 1e6, 59.52, 0.01);
  EXPECT_NEAR(line_rate_pps(sim::Rate::gigabits_per_sec(40), 1518) / 1e6, 3.25, 0.01);
  EXPECT_NEAR(line_rate_pps(sim::Rate::gigabits_per_sec(10), 1518) / 1e6, 0.8127, 0.001);
}

TEST(Checksum, KnownVector) {
  // RFC 1071 example bytes.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, AllZeroIsAllOnes) {
  const std::uint8_t data[4] = {};
  EXPECT_EQ(internet_checksum(data), 0xffff);
}

TEST(Headers, TcpRoundTrip) {
  const auto frame = build_frame_for_tuple(tcp_tuple(), 256, /*dscp=*/10);
  // 256 total with FCS → materialized bytes are 252.
  EXPECT_EQ(frame.size(), 256u - kFcsBytes);
  auto parsed = parse_frame(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->is_tcp);
  EXPECT_EQ(parsed->five_tuple(), tcp_tuple());
  EXPECT_EQ(parsed->ip.dscp, 10);
  EXPECT_EQ(parsed->payload_length,
            256 - kFcsBytes - kEthernetHeaderBytes - kIpv4HeaderBytes - kTcpHeaderBytes);
}

TEST(Headers, UdpRoundTrip) {
  FiveTuple t = tcp_tuple();
  t.proto = IpProto::kUdp;
  const auto frame = build_frame_for_tuple(t, 128);
  auto parsed = parse_frame(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->is_tcp);
  EXPECT_EQ(parsed->five_tuple(), t);
  EXPECT_EQ(parsed->udp.length,
            128 - kFcsBytes - kEthernetHeaderBytes - kIpv4HeaderBytes);
}

TEST(Headers, MinimumFrameClamped) {
  // Requesting less than the minimum encodable frame still yields a valid one.
  const auto frame = build_frame_for_tuple(tcp_tuple(), 10);
  auto parsed = parse_frame(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->payload_length, 0u);
}

TEST(Headers, CorruptedChecksumRejected) {
  auto frame = build_frame_for_tuple(tcp_tuple(), 256);
  frame[kEthernetHeaderBytes + 12] ^= 0xff;  // flip a src-ip byte
  EXPECT_FALSE(parse_frame(frame).has_value());
}

TEST(Headers, TruncatedFrameRejected) {
  auto frame = build_frame_for_tuple(tcp_tuple(), 256);
  frame.resize(20);
  EXPECT_FALSE(parse_frame(frame).has_value());
}

TEST(Headers, UnknownEtherTypeRejected) {
  auto frame = build_frame_for_tuple(tcp_tuple(), 256);
  frame[12] = 0x86;  // 0x86dd = IPv6
  frame[13] = 0xdd;
  EXPECT_FALSE(parse_frame(frame).has_value());
}

TEST(Headers, NonTcpUdpProtocolRejected) {
  auto frame = build_frame_for_tuple(tcp_tuple(), 256);
  // Patch IPv4 protocol to ICMP (1) and fix the checksum by rebuilding it.
  frame[kEthernetHeaderBytes + 9] = 1;
  frame[kEthernetHeaderBytes + 10] = 0;
  frame[kEthernetHeaderBytes + 11] = 0;
  const std::uint16_t csum =
      internet_checksum({frame.data() + kEthernetHeaderBytes, kIpv4HeaderBytes});
  frame[kEthernetHeaderBytes + 10] = static_cast<std::uint8_t>(csum >> 8);
  frame[kEthernetHeaderBytes + 11] = static_cast<std::uint8_t>(csum & 0xff);
  EXPECT_FALSE(parse_frame(frame).has_value());
}

// Parameterized round trip across frame sizes and protocols.
class HeaderRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, IpProto>> {};

TEST_P(HeaderRoundTrip, PreservesTuple) {
  auto [size, proto] = GetParam();
  FiveTuple t = tcp_tuple();
  t.proto = proto;
  t.src_port = static_cast<std::uint16_t>(1000 + size);
  const auto frame = build_frame_for_tuple(t, size);
  auto parsed = parse_frame(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->five_tuple(), t);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndProtos, HeaderRoundTrip,
    ::testing::Combine(::testing::Values(64u, 128u, 256u, 512u, 1024u, 1518u),
                       ::testing::Values(IpProto::kTcp, IpProto::kUdp)));

}  // namespace
}  // namespace flowvalve::net
