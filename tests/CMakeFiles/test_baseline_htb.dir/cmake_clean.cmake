file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_htb.dir/test_baseline_htb.cpp.o"
  "CMakeFiles/test_baseline_htb.dir/test_baseline_htb.cpp.o.d"
  "test_baseline_htb"
  "test_baseline_htb.pdb"
  "test_baseline_htb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_htb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
