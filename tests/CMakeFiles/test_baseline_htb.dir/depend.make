# Empty dependencies file for test_baseline_htb.
# This may be replaced when dependencies are built.
