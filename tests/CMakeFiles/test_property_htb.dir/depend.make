# Empty dependencies file for test_property_htb.
# This may be replaced when dependencies are built.
