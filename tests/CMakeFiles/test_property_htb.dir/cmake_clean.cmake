file(REMOVE_RECURSE
  "CMakeFiles/test_property_htb.dir/test_property_htb.cpp.o"
  "CMakeFiles/test_property_htb.dir/test_property_htb.cpp.o.d"
  "test_property_htb"
  "test_property_htb.pdb"
  "test_property_htb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_htb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
