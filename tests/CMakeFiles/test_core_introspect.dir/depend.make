# Empty dependencies file for test_core_introspect.
# This may be replaced when dependencies are built.
