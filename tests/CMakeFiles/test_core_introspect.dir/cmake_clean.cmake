file(REMOVE_RECURSE
  "CMakeFiles/test_core_introspect.dir/test_core_introspect.cpp.o"
  "CMakeFiles/test_core_introspect.dir/test_core_introspect.cpp.o.d"
  "test_core_introspect"
  "test_core_introspect.pdb"
  "test_core_introspect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_introspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
