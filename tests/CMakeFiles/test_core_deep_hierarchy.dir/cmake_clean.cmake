file(REMOVE_RECURSE
  "CMakeFiles/test_core_deep_hierarchy.dir/test_core_deep_hierarchy.cpp.o"
  "CMakeFiles/test_core_deep_hierarchy.dir/test_core_deep_hierarchy.cpp.o.d"
  "test_core_deep_hierarchy"
  "test_core_deep_hierarchy.pdb"
  "test_core_deep_hierarchy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_deep_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
