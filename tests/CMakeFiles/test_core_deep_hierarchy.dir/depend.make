# Empty dependencies file for test_core_deep_hierarchy.
# This may be replaced when dependencies are built.
