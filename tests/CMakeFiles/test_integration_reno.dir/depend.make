# Empty dependencies file for test_integration_reno.
# This may be replaced when dependencies are built.
