file(REMOVE_RECURSE
  "CMakeFiles/test_integration_reno.dir/test_integration_reno.cpp.o"
  "CMakeFiles/test_integration_reno.dir/test_integration_reno.cpp.o.d"
  "test_integration_reno"
  "test_integration_reno.pdb"
  "test_integration_reno[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_reno.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
