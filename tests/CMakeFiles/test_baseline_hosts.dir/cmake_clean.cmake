file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_hosts.dir/test_baseline_hosts.cpp.o"
  "CMakeFiles/test_baseline_hosts.dir/test_baseline_hosts.cpp.o.d"
  "test_baseline_hosts"
  "test_baseline_hosts.pdb"
  "test_baseline_hosts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_hosts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
