# Empty dependencies file for test_baseline_hosts.
# This may be replaced when dependencies are built.
