file(REMOVE_RECURSE
  "CMakeFiles/test_device_contract.dir/test_device_contract.cpp.o"
  "CMakeFiles/test_device_contract.dir/test_device_contract.cpp.o.d"
  "test_device_contract"
  "test_device_contract.pdb"
  "test_device_contract[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device_contract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
