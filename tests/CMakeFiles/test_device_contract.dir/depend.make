# Empty dependencies file for test_device_contract.
# This may be replaced when dependencies are built.
