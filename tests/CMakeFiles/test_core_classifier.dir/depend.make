# Empty dependencies file for test_core_classifier.
# This may be replaced when dependencies are built.
