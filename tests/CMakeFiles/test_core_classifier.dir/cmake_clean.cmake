file(REMOVE_RECURSE
  "CMakeFiles/test_core_classifier.dir/test_core_classifier.cpp.o"
  "CMakeFiles/test_core_classifier.dir/test_core_classifier.cpp.o.d"
  "test_core_classifier"
  "test_core_classifier.pdb"
  "test_core_classifier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
