file(REMOVE_RECURSE
  "CMakeFiles/test_np_mat.dir/test_np_mat.cpp.o"
  "CMakeFiles/test_np_mat.dir/test_np_mat.cpp.o.d"
  "test_np_mat"
  "test_np_mat.pdb"
  "test_np_mat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_np_mat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
