# Empty dependencies file for test_np_mat.
# This may be replaced when dependencies are built.
