# Empty dependencies file for test_traffic_workload.
# This may be replaced when dependencies are built.
