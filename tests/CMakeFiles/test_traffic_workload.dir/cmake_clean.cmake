file(REMOVE_RECURSE
  "CMakeFiles/test_traffic_workload.dir/test_traffic_workload.cpp.o"
  "CMakeFiles/test_traffic_workload.dir/test_traffic_workload.cpp.o.d"
  "test_traffic_workload"
  "test_traffic_workload.pdb"
  "test_traffic_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traffic_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
