file(REMOVE_RECURSE
  "CMakeFiles/test_integration_scenarios.dir/test_integration_scenarios.cpp.o"
  "CMakeFiles/test_integration_scenarios.dir/test_integration_scenarios.cpp.o.d"
  "test_integration_scenarios"
  "test_integration_scenarios.pdb"
  "test_integration_scenarios[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
