# Empty dependencies file for test_integration_scenarios.
# This may be replaced when dependencies are built.
