# Empty dependencies file for test_core_sched_tree.
# This may be replaced when dependencies are built.
