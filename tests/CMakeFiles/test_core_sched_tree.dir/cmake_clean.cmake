file(REMOVE_RECURSE
  "CMakeFiles/test_core_sched_tree.dir/test_core_sched_tree.cpp.o"
  "CMakeFiles/test_core_sched_tree.dir/test_core_sched_tree.cpp.o.d"
  "test_core_sched_tree"
  "test_core_sched_tree.pdb"
  "test_core_sched_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_sched_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
