# Empty dependencies file for test_check_fuzz.
# This may be replaced when dependencies are built.
