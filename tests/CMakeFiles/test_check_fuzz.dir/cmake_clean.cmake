file(REMOVE_RECURSE
  "CMakeFiles/test_check_fuzz.dir/test_check_fuzz.cpp.o"
  "CMakeFiles/test_check_fuzz.dir/test_check_fuzz.cpp.o.d"
  "test_check_fuzz"
  "test_check_fuzz.pdb"
  "test_check_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_check_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
