file(REMOVE_RECURSE
  "CMakeFiles/test_np_pipeline.dir/test_np_pipeline.cpp.o"
  "CMakeFiles/test_np_pipeline.dir/test_np_pipeline.cpp.o.d"
  "test_np_pipeline"
  "test_np_pipeline.pdb"
  "test_np_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_np_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
