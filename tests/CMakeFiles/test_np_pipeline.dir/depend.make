# Empty dependencies file for test_np_pipeline.
# This may be replaced when dependencies are built.
