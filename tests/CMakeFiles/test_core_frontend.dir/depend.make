# Empty dependencies file for test_core_frontend.
# This may be replaced when dependencies are built.
