file(REMOVE_RECURSE
  "CMakeFiles/test_core_frontend.dir/test_core_frontend.cpp.o"
  "CMakeFiles/test_core_frontend.dir/test_core_frontend.cpp.o.d"
  "test_core_frontend"
  "test_core_frontend.pdb"
  "test_core_frontend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
