file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_carousel.dir/test_baseline_carousel.cpp.o"
  "CMakeFiles/test_baseline_carousel.dir/test_baseline_carousel.cpp.o.d"
  "test_baseline_carousel"
  "test_baseline_carousel.pdb"
  "test_baseline_carousel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_carousel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
