# Empty dependencies file for test_baseline_carousel.
# This may be replaced when dependencies are built.
