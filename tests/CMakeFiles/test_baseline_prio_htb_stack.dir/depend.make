# Empty dependencies file for test_baseline_prio_htb_stack.
# This may be replaced when dependencies are built.
