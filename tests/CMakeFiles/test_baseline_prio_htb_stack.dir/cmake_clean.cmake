file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_prio_htb_stack.dir/test_baseline_prio_htb_stack.cpp.o"
  "CMakeFiles/test_baseline_prio_htb_stack.dir/test_baseline_prio_htb_stack.cpp.o.d"
  "test_baseline_prio_htb_stack"
  "test_baseline_prio_htb_stack.pdb"
  "test_baseline_prio_htb_stack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_prio_htb_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
