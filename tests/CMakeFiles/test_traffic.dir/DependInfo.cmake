
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_traffic.cpp" "tests/CMakeFiles/test_traffic.dir/test_traffic.cpp.o" "gcc" "tests/CMakeFiles/test_traffic.dir/test_traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/exp/CMakeFiles/fv_exp.dir/DependInfo.cmake"
  "/root/repo/src/check/CMakeFiles/fv_check.dir/DependInfo.cmake"
  "/root/repo/src/host/CMakeFiles/fv_host.dir/DependInfo.cmake"
  "/root/repo/src/np/CMakeFiles/fv_np.dir/DependInfo.cmake"
  "/root/repo/src/core/CMakeFiles/fv_core.dir/DependInfo.cmake"
  "/root/repo/src/baseline/CMakeFiles/fv_baseline.dir/DependInfo.cmake"
  "/root/repo/src/traffic/CMakeFiles/fv_traffic.dir/DependInfo.cmake"
  "/root/repo/src/net/CMakeFiles/fv_net.dir/DependInfo.cmake"
  "/root/repo/src/stats/CMakeFiles/fv_stats.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/fv_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
