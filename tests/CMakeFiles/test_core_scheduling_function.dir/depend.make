# Empty dependencies file for test_core_scheduling_function.
# This may be replaced when dependencies are built.
