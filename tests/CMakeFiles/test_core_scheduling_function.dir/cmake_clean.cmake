file(REMOVE_RECURSE
  "CMakeFiles/test_core_scheduling_function.dir/test_core_scheduling_function.cpp.o"
  "CMakeFiles/test_core_scheduling_function.dir/test_core_scheduling_function.cpp.o.d"
  "test_core_scheduling_function"
  "test_core_scheduling_function.pdb"
  "test_core_scheduling_function[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_scheduling_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
