# Empty dependencies file for test_baseline_pifo.
# This may be replaced when dependencies are built.
