file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_pifo.dir/test_baseline_pifo.cpp.o"
  "CMakeFiles/test_baseline_pifo.dir/test_baseline_pifo.cpp.o.d"
  "test_baseline_pifo"
  "test_baseline_pifo.pdb"
  "test_baseline_pifo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_pifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
