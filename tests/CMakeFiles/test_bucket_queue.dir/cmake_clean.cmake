file(REMOVE_RECURSE
  "CMakeFiles/test_bucket_queue.dir/test_bucket_queue.cpp.o"
  "CMakeFiles/test_bucket_queue.dir/test_bucket_queue.cpp.o.d"
  "test_bucket_queue"
  "test_bucket_queue.pdb"
  "test_bucket_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bucket_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
