# Empty dependencies file for test_bucket_queue.
# This may be replaced when dependencies are built.
