file(REMOVE_RECURSE
  "CMakeFiles/test_smoke_scenarios.dir/test_smoke_scenarios.cpp.o"
  "CMakeFiles/test_smoke_scenarios.dir/test_smoke_scenarios.cpp.o.d"
  "test_smoke_scenarios"
  "test_smoke_scenarios.pdb"
  "test_smoke_scenarios[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smoke_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
