# Empty dependencies file for test_smoke_scenarios.
# This may be replaced when dependencies are built.
