file(REMOVE_RECURSE
  "CMakeFiles/test_net_headers.dir/test_net_headers.cpp.o"
  "CMakeFiles/test_net_headers.dir/test_net_headers.cpp.o.d"
  "test_net_headers"
  "test_net_headers.pdb"
  "test_net_headers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_headers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
