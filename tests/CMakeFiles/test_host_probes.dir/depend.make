# Empty dependencies file for test_host_probes.
# This may be replaced when dependencies are built.
