file(REMOVE_RECURSE
  "CMakeFiles/test_host_probes.dir/test_host_probes.cpp.o"
  "CMakeFiles/test_host_probes.dir/test_host_probes.cpp.o.d"
  "test_host_probes"
  "test_host_probes.pdb"
  "test_host_probes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_host_probes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
