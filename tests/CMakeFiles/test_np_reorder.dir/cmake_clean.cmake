file(REMOVE_RECURSE
  "CMakeFiles/test_np_reorder.dir/test_np_reorder.cpp.o"
  "CMakeFiles/test_np_reorder.dir/test_np_reorder.cpp.o.d"
  "test_np_reorder"
  "test_np_reorder.pdb"
  "test_np_reorder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_np_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
