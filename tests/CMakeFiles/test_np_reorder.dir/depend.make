# Empty dependencies file for test_np_reorder.
# This may be replaced when dependencies are built.
