// Unit tests for the P4-style match-action table engine.
#include <gtest/gtest.h>

#include "np/mat.h"

namespace flowvalve::np::mat {
namespace {

net::Packet make_packet(std::uint16_t vf, std::uint32_t src_ip, std::uint16_t dport,
                        net::IpProto proto = net::IpProto::kTcp) {
  net::Packet p;
  p.vf_port = vf;
  p.wire_bytes = 500;
  p.tuple.src_ip = src_ip;
  p.tuple.dst_ip = 0x0a000002;
  p.tuple.src_port = 1234;
  p.tuple.dst_port = dport;
  p.tuple.proto = proto;
  return p;
}

TEST(MatchSpecTest, Kinds) {
  EXPECT_TRUE(MatchSpec::any(Field::kSrcIp).matches(0xdeadbeef));
  EXPECT_TRUE(MatchSpec::exact(Field::kDstPort, 80).matches(80));
  EXPECT_FALSE(MatchSpec::exact(Field::kDstPort, 80).matches(81));
  // Ternary: match on low byte only.
  const auto t = MatchSpec::ternary(Field::kSrcIp, 0x00000042, 0x000000ff);
  EXPECT_TRUE(t.matches(0xaabbcc42));
  EXPECT_FALSE(t.matches(0xaabbcc43));
  // LPM /24.
  const auto l = MatchSpec::lpm(Field::kSrcIp, 0x0a000100, 24);
  EXPECT_TRUE(l.matches(0x0a0001fe));
  EXPECT_FALSE(l.matches(0x0a0002fe));
  EXPECT_TRUE(MatchSpec::lpm(Field::kSrcIp, 0, 0).matches(12345));
}

TEST(ParsePacketTest, ExtractsAllFields) {
  const net::Packet p = make_packet(3, 0x0a000001, 443, net::IpProto::kUdp);
  const FieldValues f = parse_packet(p);
  EXPECT_EQ(f.get(Field::kVfPort), 3u);
  EXPECT_EQ(f.get(Field::kSrcIp), 0x0a000001u);
  EXPECT_EQ(f.get(Field::kDstPort), 443u);
  EXPECT_EQ(f.get(Field::kProto), 17u);
  EXPECT_EQ(f.get(Field::kFrameLen), 500u);
}

TEST(ParseFrameBytesTest, FullParserPath) {
  net::FiveTuple t;
  t.src_ip = 0x0a000001;
  t.dst_ip = 0x0a000002;
  t.src_port = 5555;
  t.dst_port = 80;
  const auto frame = net::build_frame_for_tuple(t, 256, /*dscp=*/46);
  const auto fields = parse_frame_bytes(frame, 2);
  ASSERT_TRUE(fields.has_value());
  EXPECT_EQ(fields->get(Field::kVfPort), 2u);
  EXPECT_EQ(fields->get(Field::kSrcPort), 5555u);
  EXPECT_EQ(fields->get(Field::kDscp), 46u);
  EXPECT_EQ(fields->get(Field::kFrameLen), 256u);
}

TEST(ParseFrameBytesTest, MalformedRejected) {
  const std::uint8_t junk[32] = {};
  EXPECT_FALSE(parse_frame_bytes(junk, 0).has_value());
}

MatTable make_label_table() {
  MatTable t("labeling");
  TableEntry e1;
  e1.match = {MatchSpec::exact(Field::kVfPort, 0)};
  e1.priority = 10;
  e1.action = Action::set_label(100);
  t.add_entry(e1);
  TableEntry e2;
  e2.match = {MatchSpec::exact(Field::kDstPort, 80),
              MatchSpec::lpm(Field::kSrcIp, 0x0a000000, 8)};
  e2.priority = 20;
  e2.action = Action::set_label(200);
  t.add_entry(e2);
  t.set_default_action(Action::set_label(300));
  return t;
}

TEST(MatTableTest, PriorityOrderedFirstMatch) {
  MatTable t = make_label_table();
  // Both entries match a vf0+port80 packet; priority 10 wins.
  FieldValues f = parse_packet(make_packet(0, 0x0a000001, 80));
  EXPECT_EQ(t.lookup(f).arg, 100u);
  f = parse_packet(make_packet(5, 0x0a000001, 80));
  EXPECT_EQ(t.lookup(f).arg, 200u);
  f = parse_packet(make_packet(5, 0x0b000001, 22));
  EXPECT_EQ(t.lookup(f).arg, 300u);  // default
  EXPECT_EQ(t.stats().lookups, 3u);
  EXPECT_EQ(t.stats().hits, 2u);
  EXPECT_EQ(t.stats().defaults, 1u);
}

TEST(MatTableTest, AllCriteriaMustMatch) {
  MatTable t("and");
  TableEntry e;
  e.match = {MatchSpec::exact(Field::kVfPort, 1), MatchSpec::exact(Field::kDstPort, 80)};
  e.action = Action::set_label(7);
  t.add_entry(e);
  t.set_default_action(Action::drop());
  EXPECT_EQ(t.lookup(parse_packet(make_packet(1, 0, 80))).arg, 7u);
  EXPECT_EQ(t.lookup(parse_packet(make_packet(1, 0, 81))).kind, Action::Kind::kDrop);
  EXPECT_EQ(t.lookup(parse_packet(make_packet(2, 0, 80))).kind, Action::Kind::kDrop);
}

TEST(MatProgramTest, LabelsPacket) {
  MatProgram prog;
  prog.add_table(make_label_table());
  net::Packet p = make_packet(0, 0x0a000001, 80);
  const auto r = prog.run(p);
  EXPECT_FALSE(r.drop);
  EXPECT_EQ(p.label, 100u);
  EXPECT_EQ(r.tables_visited, 1u);
}

TEST(MatProgramTest, AclDropShortCircuits) {
  MatProgram prog;
  MatTable acl("acl");
  TableEntry deny;
  deny.match = {MatchSpec::lpm(Field::kSrcIp, 0xc0a80000, 16)};  // 192.168/16
  deny.action = Action::drop();
  acl.add_entry(deny);
  acl.set_default_action(Action::none());
  prog.add_table(std::move(acl));
  prog.add_table(make_label_table());

  net::Packet denied = make_packet(0, 0xc0a80101, 80);
  EXPECT_TRUE(prog.run(denied).drop);
  EXPECT_EQ(denied.label, net::kUnclassified);

  net::Packet ok = make_packet(0, 0x0a000001, 80);
  const auto r = prog.run(ok);
  EXPECT_FALSE(r.drop);
  EXPECT_EQ(ok.label, 100u);
  EXPECT_EQ(r.tables_visited, 2u);
}

TEST(MatProgramTest, GotoSkipsTables) {
  MatProgram prog;
  MatTable t0("steer");
  TableEntry skip;
  skip.match = {MatchSpec::exact(Field::kProto, 17)};  // UDP → skip table 1
  skip.action = Action::go_to(2);
  t0.add_entry(skip);
  t0.set_default_action(Action::none());
  prog.add_table(std::move(t0));

  MatTable t1("tcp_only");
  t1.set_default_action(Action::set_label(1));
  prog.add_table(std::move(t1));

  MatTable t2("everyone");
  t2.set_default_action(Action::set_label(2));
  prog.add_table(std::move(t2));

  net::Packet udp = make_packet(0, 1, 53, net::IpProto::kUdp);
  prog.run(udp);
  EXPECT_EQ(udp.label, 2u);  // skipped tcp_only

  net::Packet tcp = make_packet(0, 1, 80, net::IpProto::kTcp);
  prog.run(tcp);
  EXPECT_EQ(tcp.label, 2u);  // visited both; later set wins
}

TEST(MatProgramTest, LaterSetLabelOverridesEarlier) {
  MatProgram prog;
  MatTable t0("coarse");
  t0.set_default_action(Action::set_label(1));
  prog.add_table(std::move(t0));
  MatTable t1("fine");
  TableEntry e;
  e.match = {MatchSpec::exact(Field::kDstPort, 80)};
  e.action = Action::set_label(2);
  t1.add_entry(e);
  t1.set_default_action(Action::none());
  prog.add_table(std::move(t1));

  net::Packet web = make_packet(0, 1, 80);
  prog.run(web);
  EXPECT_EQ(web.label, 2u);
  net::Packet ssh = make_packet(0, 1, 22);
  prog.run(ssh);
  EXPECT_EQ(ssh.label, 1u);
}

TEST(MatProgramTest, EmptyProgramLeavesUnclassified) {
  MatProgram prog;
  net::Packet p = make_packet(0, 1, 80);
  const auto r = prog.run(p);
  EXPECT_FALSE(r.drop);
  EXPECT_EQ(p.label, net::kUnclassified);
}

}  // namespace
}  // namespace flowvalve::np::mat

#include <sstream>

#include "core/frontend.h"
#include "sim/rng.h"

namespace flowvalve::np::mat {
namespace {

// Differential test: the compiled MAT program must classify exactly like
// the rule-walk classifier across random packets and a random rule table.
class MatClassifierEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatClassifierEquivalence, AgreesWithRuleWalk) {
  sim::Rng rng(GetParam() * 6364136223846793005ull);
  core::FvFrontend fe;
  fe.apply("fv qdisc add dev nic0 root handle 1: htb rate 10gbit");
  const unsigned classes = 3 + static_cast<unsigned>(rng.next_below(3));
  for (unsigned i = 0; i < classes; ++i)
    fe.apply("fv class add dev nic0 parent 1: classid 1:1" + std::to_string(i) +
             " name c" + std::to_string(i) + " weight 1");
  // Random filters: vf / dport / src-prefix in random combinations.
  for (unsigned i = 0; i < 2 * classes; ++i) {
    std::ostringstream cmd;
    cmd << "fv filter add dev nic0 pref " << 10 + i;
    if (rng.chance(0.5)) cmd << " vf " << rng.next_below(4);
    if (rng.chance(0.5)) cmd << " dport " << 80 + rng.next_below(4);
    if (rng.chance(0.4)) cmd << " src 10." << rng.next_below(4) << ".0.0/16";
    if (rng.chance(0.3)) cmd << " proto " << (rng.chance(0.5) ? "tcp" : "udp");
    cmd << " classid 1:1" << rng.next_below(classes);
    fe.apply(cmd.str());
  }
  ASSERT_EQ(fe.finalize(), "");
  fe.classifier().set_cache_enabled(false);  // pure rule walk

  const MatProgram prog = compile_labeling_program(fe.classifier());
  for (int trial = 0; trial < 2000; ++trial) {
    net::Packet p;
    p.vf_port = static_cast<std::uint16_t>(rng.next_below(6));
    p.wire_bytes = 300;
    p.tuple.src_ip = 0x0a000000u | static_cast<std::uint32_t>(rng.next_below(1 << 18));
    p.tuple.dst_ip = 0x0a000002;
    p.tuple.src_port = static_cast<std::uint16_t>(rng.next_below(1000));
    p.tuple.dst_port = static_cast<std::uint16_t>(78 + rng.next_below(8));
    p.tuple.proto = rng.chance(0.5) ? net::IpProto::kTcp : net::IpProto::kUdp;

    const auto walk = fe.classifier().classify(p, static_cast<std::uint64_t>(trial));
    const auto mat = prog.apply(parse_packet(p));
    if (walk.label == net::kUnclassified) {
      EXPECT_TRUE(mat.drop) << "trial " << trial;
    } else {
      EXPECT_FALSE(mat.drop) << "trial " << trial;
      EXPECT_EQ(mat.label, walk.label) << "trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatClassifierEquivalence,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace flowvalve::np::mat
