// Unit tests for Algorithm 1 — the scheduling function — driven with
// synthetic packet trains over small trees.
#include <gtest/gtest.h>

#include "core/flowvalve.h"
#include "core/scheduling_function.h"

namespace flowvalve::core {
namespace {

using sim::Rate;

/// A two-leaf fair tree built through the engine so labels/filters exist.
FlowValveEngine make_engine(const std::string& extra = "",
                            FvParams params = FvParams{}) {
  FlowValveEngine::Options opt;
  opt.params = params;
  FlowValveEngine engine(opt);
  std::string script =
      "fv qdisc add dev nic0 root handle 1: htb rate 8gbit\n"
      "fv class add dev nic0 parent 1: classid 1:10 name a weight 1\n"
      "fv class add dev nic0 parent 1: classid 1:11 name b weight 1\n"
      "fv filter add dev nic0 pref 1 vf 0 classid 1:10\n"
      "fv filter add dev nic0 pref 2 vf 1 classid 1:11\n";
  script += extra;
  const std::string err = engine.configure(script);
  EXPECT_EQ(err, "");
  return engine;
}

net::Packet packet_on(std::uint16_t vf, std::uint32_t bytes = 1000) {
  net::Packet p;
  p.vf_port = vf;
  p.wire_bytes = bytes;
  p.tuple.src_ip = 0x0a000001 + vf;
  p.tuple.dst_ip = 0x0a000002;
  p.tuple.src_port = static_cast<std::uint16_t>(1000 + vf);
  p.tuple.dst_port = 80;
  return p;
}

/// Drive `vf` at `offered` for `duration`; returns forwarded byte rate.
Rate drive(FlowValveEngine& engine, std::uint16_t vf, Rate offered,
           sim::SimDuration duration, std::uint32_t bytes = 1000,
           sim::SimTime start = 0) {
  const double gap_ns = static_cast<double>(bytes + net::kEthernetOverheadBytes) * 8e9 /
                        offered.bps();
  std::uint64_t fwd_bytes = 0;
  double t = static_cast<double>(start);
  while (t < static_cast<double>(start + duration)) {
    net::Packet p = packet_on(vf, bytes);
    const auto r = engine.process(p, static_cast<sim::SimTime>(t));
    if (r.verdict == Verdict::kForward) fwd_bytes += bytes + net::kEthernetOverheadBytes;
    t += gap_ns;
  }
  return Rate::bytes_per_sec(static_cast<double>(fwd_bytes) * 1e9 /
                             static_cast<double>(duration));
}

TEST(SchedulingFunctionTest, ForwardsWithinAllowance) {
  auto engine = make_engine();
  // Class a has θ = 4G; offer 3G → everything passes.
  const Rate got = drive(engine, 0, Rate::gigabits_per_sec(3), sim::milliseconds(50));
  EXPECT_NEAR(got.gbps(), 3.0, 0.1);
  EXPECT_EQ(engine.scheduler().stats().dropped, 0u);
}

TEST(SchedulingFunctionTest, ThrottlesToTheta) {
  auto engine = make_engine();
  // Offer 7G against a 4G share with the sibling active (no borrowing
  // configured in this script) → ~4G passes.
  drive(engine, 1, Rate::gigabits_per_sec(1), sim::milliseconds(5));  // activate b
  const Rate got = drive(engine, 0, Rate::gigabits_per_sec(7), sim::milliseconds(50),
                         1000, sim::milliseconds(5));
  EXPECT_NEAR(got.gbps(), 4.0, 0.35);
  EXPECT_GT(engine.scheduler().stats().dropped, 0u);
}

TEST(SchedulingFunctionTest, UnlabeledPacketAsserts) {
  auto engine = make_engine();
  net::Packet p = packet_on(9);  // no filter matches vf 9, no default
  const auto r = engine.process(p, 0);
  EXPECT_EQ(r.verdict, Verdict::kDrop);
}

TEST(SchedulingFunctionTest, BorrowingLiftsThrottle) {
  auto engine = make_engine(
      "fv borrow add dev nic0 classid 1:10 from 1:11\n");
  // b idle: a may exceed its 4G share by borrowing b's shadow tokens.
  const Rate got = drive(engine, 0, Rate::gigabits_per_sec(7.8), sim::milliseconds(50));
  EXPECT_GT(got.gbps(), 6.5);
  EXPECT_GT(engine.scheduler().stats().borrowed, 0u);
}

TEST(SchedulingFunctionTest, BorrowedBytesTrackedOnLeaf) {
  auto engine = make_engine("fv borrow add dev nic0 classid 1:10 from 1:11\n");
  drive(engine, 0, Rate::gigabits_per_sec(7.8), sim::milliseconds(20));
  const auto& a = engine.tree().at(engine.tree().find("a"));
  EXPECT_GT(a.borrowed_packets, 0u);
  EXPECT_GT(a.borrowed_bytes, 0u);
}

TEST(SchedulingFunctionTest, ActiveLenderHasNothingToLend) {
  auto engine = make_engine("fv borrow add dev nic0 classid 1:10 from 1:11\n");
  // Interleave: a offers 7.8G while b concurrently offers 6G — b's shadow
  // has nothing to lend, so a stays near its own 4G share.
  const std::uint32_t bytes = 1000;
  const double gap_a = (bytes + 20.0) * 8e9 / 7.8e9;
  const double gap_b = (bytes + 20.0) * 8e9 / 6.0e9;
  double ta = 0, tb = 0;
  std::uint64_t fwd_a = 0;
  const double horizon = sim::milliseconds(40);
  while (ta < horizon || tb < horizon) {
    if (ta <= tb) {
      net::Packet p = packet_on(0, bytes);
      if (engine.process(p, static_cast<sim::SimTime>(ta)).verdict ==
          Verdict::kForward)
        fwd_a += bytes + 20;
      ta += gap_a;
    } else {
      net::Packet p = packet_on(1, bytes);
      engine.process(p, static_cast<sim::SimTime>(tb));
      tb += gap_b;
    }
  }
  const double got_gbps = static_cast<double>(fwd_a) * 8.0 / horizon;
  EXPECT_LT(got_gbps, 5.2);
  EXPECT_GT(got_gbps, 3.4);
}

TEST(SchedulingFunctionTest, DropStatsAttributedToLeaf) {
  auto engine = make_engine();
  drive(engine, 1, Rate::gigabits_per_sec(1), sim::milliseconds(5));
  drive(engine, 0, Rate::gigabits_per_sec(8), sim::milliseconds(30), 1000,
        sim::milliseconds(5));
  const auto& a = engine.tree().at(engine.tree().find("a"));
  const auto& b = engine.tree().at(engine.tree().find("b"));
  EXPECT_GT(a.drop_packets, 0u);
  EXPECT_EQ(b.drop_packets, 0u);
}

TEST(SchedulingFunctionTest, UpdatesRespectEpochInterval) {
  FvParams params;
  params.update_interval = sim::milliseconds(1);
  auto engine = make_engine("", params);
  // 100 packets in 100 µs: only the epoch boundary (t=0 excluded by dt==0
  // guard → first real update at ≥1 ms) may update.
  for (int i = 0; i < 100; ++i) {
    net::Packet p = packet_on(0);
    engine.process(p, i * 1000);
  }
  EXPECT_LE(engine.scheduler().stats().updates, 4u);
}

TEST(SchedulingFunctionTest, LockLosersSkipUpdate) {
  // Two "cores" hit the same class inside the update lock's hold window
  // (epoch shorter than the hold): the loser skips the update and only
  // meters — the Fig. 8 semantics.
  FvParams params;
  params.update_interval = sim::nanoseconds(100);  // < lock_hold_ns (267)
  auto engine = make_engine("", params);
  net::Packet p1 = packet_on(0);
  engine.process(p1, sim::microseconds(100));  // updates, locks until +267ns
  const auto before = engine.scheduler().stats().updates;
  net::Packet p2 = packet_on(0);
  engine.process(p2, sim::microseconds(100) + 150);  // epoch ok, lock busy
  EXPECT_GT(engine.scheduler().stats().lock_failures, 0u);
  EXPECT_EQ(engine.scheduler().stats().updates, before);
}

TEST(SchedulingFunctionTest, CycleCostsAccumulate) {
  auto engine = make_engine();
  net::Packet p = packet_on(0);
  const auto r = engine.process(p, sim::milliseconds(1));
  // At least classify + 2x count + meter.
  EXPECT_GT(r.cycles, 150u);
}

TEST(SchedulingFunctionTest, ExpiredClassRestartsCleanly) {
  FvParams params;
  auto engine = make_engine("", params);
  drive(engine, 0, Rate::gigabits_per_sec(6), sim::milliseconds(20));
  // Long silence (≫ expiry), then resume: Γ restored, forwarding works.
  const sim::SimTime resume = sim::milliseconds(20) + params.expiry_threshold * 4;
  const Rate got = drive(engine, 0, Rate::gigabits_per_sec(2), sim::milliseconds(20),
                         1000, resume);
  EXPECT_NEAR(got.gbps(), 2.0, 0.1);
}

TEST(SchedulingFunctionTest, WireOccupancyCharged) {
  // Token accounting uses frame + 20B overhead: at 64B frames the effective
  // goodput is 64/84 of the token rate.
  auto engine = make_engine();
  drive(engine, 1, Rate::gigabits_per_sec(1), sim::milliseconds(5));  // keep b active
  const Rate got = drive(engine, 0, Rate::gigabits_per_sec(8), sim::milliseconds(40),
                         64, sim::milliseconds(5));
  // drive() reports occupancy rate, so the cap is still θ=4G.
  EXPECT_NEAR(got.gbps(), 4.0, 0.4);
}

}  // namespace
}  // namespace flowvalve::core
