// Unit tests for the experiment harness itself: policy-script validity,
// TimeSeriesResult math, and scenario plumbing.
#include <gtest/gtest.h>

#include "core/flowvalve.h"
#include "exp/scenarios.h"

namespace flowvalve::exp {
namespace {

TEST(PolicyScripts, MotivationScriptConfigures) {
  core::FlowValveEngine engine;
  EXPECT_EQ(engine.configure(motivation_policy_script(Rate::gigabits_per_sec(10))), "");
  const auto& tree = engine.tree();
  EXPECT_EQ(tree.size(), 7u);  // root, NC, S1, WS, S2, KVS, ML
  for (const char* name : {"NC", "S1", "WS", "S2", "KVS", "ML"})
    EXPECT_NE(tree.find(name), core::kNoClass) << name;
  // NC: prio 0, ceil 7.5.
  const auto& nc = tree.at(tree.find("NC"));
  EXPECT_EQ(nc.policy.prio, 0);
  EXPECT_NEAR(nc.policy.ceil.gbps(), 7.5, 0.01);
  // ML: guarantee 2G, borrows from S2 and KVS.
  const auto& ml_label = engine.frontend().labels().get(engine.frontend().label_of("ML"));
  ASSERT_EQ(ml_label.borrow.size(), 2u);
  EXPECT_EQ(ml_label.borrow[0], tree.find("S2"));
  EXPECT_EQ(ml_label.borrow[1], tree.find("KVS"));
}

TEST(PolicyScripts, FairQueueingScriptScales) {
  for (unsigned n : {2u, 4u, 8u}) {
    core::FlowValveEngine engine;
    EXPECT_EQ(engine.configure(fair_queueing_script(Rate::gigabits_per_sec(40), n)), "");
    EXPECT_EQ(engine.tree().size(), n + 1);
    // Each leaf borrows from the n-1 others.
    const auto& label =
        engine.frontend().labels().get(engine.frontend().label_of("app0"));
    EXPECT_EQ(label.borrow.size(), n - 1);
  }
}

TEST(PolicyScripts, WeightedFqScriptMatchesFig12) {
  core::FlowValveEngine engine;
  EXPECT_EQ(engine.configure(weighted_fq_script(Rate::gigabits_per_sec(40))), "");
  const auto& tree = engine.tree();
  // App0 and S1 are root children 1:1; App1/S2 under S1; App2/App3 under S2.
  const auto app0 = tree.find("App0");
  const auto s1 = tree.find("S1");
  const auto app3 = tree.find("App3");
  ASSERT_NE(app0, core::kNoClass);
  EXPECT_EQ(tree.at(app0).parent, tree.root());
  EXPECT_EQ(tree.at(s1).parent, tree.root());
  EXPECT_EQ(tree.at(app3).depth, 3);
}

TEST(TimeSeriesResultTest, MeanAndTotalMath) {
  TimeSeriesResult r;
  r.horizon = sim::seconds(2);
  auto s = std::make_unique<stats::ThroughputSeries>(sim::milliseconds(100));
  // 1 Gbps over the first second only: 12.5 MB per 100 ms bin.
  for (int bin = 0; bin < 10; ++bin)
    s->add(bin * sim::milliseconds(100) + 1, 12'500'000);
  r.apps.push_back(AppCurve{"x", std::move(s)});
  EXPECT_NEAR(r.mean_rate("x", 0.0, 1.0).gbps(), 1.0, 0.001);
  EXPECT_NEAR(r.mean_rate("x", 1.0, 2.0).gbps(), 0.0, 0.001);
  EXPECT_NEAR(r.mean_rate("x", 0.0, 2.0).gbps(), 0.5, 0.001);
  EXPECT_NEAR(r.total_rate(0.0, 1.0).gbps(), 1.0, 0.001);
  EXPECT_DOUBLE_EQ(r.mean_rate("nope", 0.0, 1.0).bps(), 0.0);
}

TEST(TimeSeriesResultTest, TableAndChartRender) {
  TimeSeriesResult r;
  r.horizon = sim::seconds(1);
  auto s = std::make_unique<stats::ThroughputSeries>(sim::milliseconds(100));
  s->add(1, 125'000'000);
  r.apps.push_back(AppCurve{"x", std::move(s)});
  const std::string table = r.table(sim::milliseconds(500));
  EXPECT_NE(table.find("x(Gbps)"), std::string::npos);
  const std::string chart = r.ascii_chart(Rate::gigabits_per_sec(10));
  EXPECT_NE(chart.find("x |"), std::string::npos);
}

TEST(SuperpacketOptions, ScaleBucketsAndEpochs) {
  const auto opt = superpacket_engine_options(np::agilio_cx_40g());
  EXPECT_GE(opt.params.min_burst_bytes, 2.0 * kSuperPacketBytes);
  EXPECT_GE(opt.params.burst_window, opt.params.update_interval);
  // Lock hold must match the NP clock (320 cycles at 1.2 GHz ≈ 267 ns).
  EXPECT_NEAR(static_cast<double>(opt.sched_costs.lock_hold_ns), 267.0, 2.0);
}

TEST(Fig13Provisioning, CoreRuleMatchesPaper) {
  // floor(offered / 2.25), clamped to [1,4]: 1518→1, 1024→2, 64→4.
  const auto row1518 = [] {
    Fig13Row r;
    r.line_mpps = 3.25;
    return r;
  }();
  (void)row1518;
  EXPECT_EQ(run_fig13_row(1518, 1).dpdk_cores, 1u);
  EXPECT_EQ(run_fig13_row(1024, 1).dpdk_cores, 2u);
}

}  // namespace
}  // namespace flowvalve::exp
