// Tier-1 coverage for the parallel corpus runner: the sequential-equivalence
// oracle (every seed's CheckReport under --jobs N is bit-identical to the
// --jobs 1 reference, across scenario families, backends, and batch sizes)
// and per-task crash isolation (a throwing or checker-violating seed becomes
// a structured failure record while the remaining seeds complete and merge).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "check/runner.h"
#include "core/scheduler_backend.h"
#include "fault/fault.h"

namespace flowvalve::check {
namespace {

// A permanent (never-clearing) injected pipeline bug — the same
// checker-validation fault test_check_fuzz uses to prove checkers fire.
fault::FaultEvent permanent_bug(fault::FaultKind kind, std::uint64_t every) {
  fault::FaultEvent ev;
  ev.kind = kind;
  ev.at = 0;
  ev.duration = 0;
  ev.period = static_cast<sim::SimDuration>(every);
  return ev;
}

std::vector<std::uint64_t> corpus(std::uint64_t n) {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 1; s <= n; ++s) seeds.push_back(s);
  return seeds;
}

/// The oracle itself: run the corpus at jobs=1 and jobs=8 and demand
/// bit-identical fingerprints for every seed.
void expect_parallel_equals_sequential(const std::vector<std::uint64_t>& seeds,
                                       const RunOptions& opts,
                                       const char* label) {
  const std::vector<SeedOutcome> seq = run_corpus(seeds, opts, /*jobs=*/1);
  const std::vector<SeedOutcome> par = run_corpus(seeds, opts, /*jobs=*/8);
  ASSERT_EQ(seq.size(), seeds.size()) << label;
  ASSERT_EQ(par.size(), seeds.size()) << label;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(seq[i].seed, seeds[i]) << label;
    EXPECT_EQ(par[i].seed, seeds[i]) << label;
    ASSERT_FALSE(seq[i].crashed) << label << ": " << seq[i].crash_what;
    ASSERT_FALSE(par[i].crashed) << label << ": " << par[i].crash_what;
    EXPECT_EQ(report_fingerprint(seq[i].report),
              report_fingerprint(par[i].report))
        << label << ": seed " << seeds[i]
        << " diverges between jobs=1 and jobs=8";
  }
}

TEST(ParallelCorpus, StandardSeedsBitIdentical) {
  expect_parallel_equals_sequential(corpus(8), RunOptions{}, "standard");
}

TEST(ParallelCorpus, ChaosSeedsBitIdentical) {
  RunOptions opts;
  opts.chaos = true;
  expect_parallel_equals_sequential(corpus(4), opts, "chaos");
}

TEST(ParallelCorpus, ChaosWithStormsAndBatchBitIdentical) {
  RunOptions opts;
  opts.chaos = true;
  opts.storm_collision = true;
  opts.storm_churn = true;
  opts.batch_size = 32;
  expect_parallel_equals_sequential(corpus(3), opts, "chaos+storms+batch32");
}

TEST(ParallelCorpus, ReconfigSeedsBitIdentical) {
  RunOptions opts;
  opts.reconfig_updates = 2;
  expect_parallel_equals_sequential(corpus(3), opts, "reconfig");
}

TEST(ParallelCorpus, EveryBackendEveryBatchBitIdentical) {
  for (core::BackendKind backend :
       {core::BackendKind::kFlowValve, core::BackendKind::kStfq,
        core::BackendKind::kEiffel, core::BackendKind::kSpPifo}) {
    for (unsigned batch : {1u, 32u}) {
      RunOptions opts;
      opts.backend = backend;
      opts.batch_size = batch;
      const std::string label = std::string(core::backend_kind_name(backend)) +
                                "/batch" + std::to_string(batch);
      expect_parallel_equals_sequential(corpus(2), opts, label.c_str());
    }
  }
}

// A seed whose scenario escapes with an exception must surface as a
// structured crash record in its own slot — and every other seed must
// complete and merge with a fingerprint identical to an all-clean run.
TEST(ParallelCorpus, ThrowingSeedIsIsolated) {
  const std::vector<std::uint64_t> seeds = corpus(6);
  constexpr std::uint64_t kBadSeed = 4;
  const auto body = [](std::uint64_t seed) {
    if (seed == kBadSeed)
      throw std::runtime_error("scenario blew up (deliberate)");
    return run_seed(seed, RunOptions{});
  };
  const std::vector<SeedOutcome> clean =
      run_corpus(seeds, RunOptions{}, /*jobs=*/1);
  for (unsigned jobs : {1u, 8u}) {
    const std::vector<SeedOutcome> got = run_corpus_with(seeds, body, jobs);
    ASSERT_EQ(got.size(), seeds.size());
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      if (seeds[i] == kBadSeed) {
        EXPECT_TRUE(got[i].crashed);
        EXPECT_EQ(got[i].crash_what, "scenario blew up (deliberate)");
        EXPECT_FALSE(got[i].ok());
      } else {
        ASSERT_FALSE(got[i].crashed) << got[i].crash_what;
        EXPECT_EQ(report_fingerprint(got[i].report),
                  report_fingerprint(clean[i].report))
            << "seed " << seeds[i] << " perturbed by the crashed seed";
      }
    }
  }
}

// A seed that violates an invariant checker (injected packet leak) is not a
// crash: it completes with a violation-carrying report, in its own slot,
// while the other seeds stay clean — at any job count.
TEST(ParallelCorpus, ViolatingSeedIsIsolated) {
  const std::vector<std::uint64_t> seeds = corpus(5);
  constexpr std::uint64_t kLeakySeed = 2;
  const auto body = [](std::uint64_t seed) {
    RunOptions opts;
    if (seed == kLeakySeed)
      opts.faults.push_back(permanent_bug(fault::FaultKind::kLeakCommit, 97));
    return run_seed(seed, opts);
  };
  for (unsigned jobs : {1u, 8u}) {
    const std::vector<SeedOutcome> got = run_corpus_with(seeds, body, jobs);
    ASSERT_EQ(got.size(), seeds.size());
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      ASSERT_FALSE(got[i].crashed) << got[i].crash_what;
      if (seeds[i] == kLeakySeed) {
        EXPECT_FALSE(got[i].ok());
        EXPECT_GT(got[i].report.violation_total, 0u);
      } else {
        EXPECT_TRUE(got[i].ok()) << got[i].report.summary();
      }
    }
  }
}

}  // namespace
}  // namespace flowvalve::check
