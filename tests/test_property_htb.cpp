// Property tests for the HTB baseline: conservation, ceiling bounds, and
// rate guarantees across randomized class configurations.
#include <gtest/gtest.h>

#include "baseline/htb.h"
#include "sim/rng.h"

namespace flowvalve::baseline {
namespace {

using sim::Rate;

struct RandomHtb {
  HtbQdisc htb;
  std::vector<double> rates_g;  // per-class committed rates
  std::vector<double> ceils_g;
  unsigned classes;

  RandomHtb(sim::Rng& rng, double root_g, bool artifacts_on)
      : htb(Rate::gigabits_per_sec(root_g), Rate::gigabits_per_sec(root_g),
            [&] {
              HtbArtifacts a;
              a.enabled = artifacts_on;
              a.charge_factor = 1.0;  // isolate scheduling, not accounting
              return a;
            }()),
        classes(2 + static_cast<unsigned>(rng.next_below(4))) {
    double remaining = root_g;
    for (unsigned i = 0; i < classes; ++i) {
      const double rate =
          std::min(remaining * 0.9, 0.3 + rng.next_double() * root_g / classes);
      remaining -= rate;
      const double ceil = rate + rng.next_double() * (root_g - rate);
      rates_g.push_back(rate);
      ceils_g.push_back(ceil);
      HtbClassConfig c;
      c.name = "c" + std::to_string(i);
      c.rate = Rate::gigabits_per_sec(rate);
      c.ceil = Rate::gigabits_per_sec(ceil);
      c.prio = static_cast<int>(rng.next_below(2));
      c.queue_limit = 64;
      htb.add_class(c);
    }
    htb.set_classifier([n = classes](const net::Packet& p) {
      return "c" + std::to_string(p.app_id % n);
    });
  }
};

class HtbRandomConfig : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HtbRandomConfig, ConservationCeilingsAndGuarantees) {
  sim::Rng rng(GetParam() * 1315423911ull);
  RandomHtb r(rng, 10.0, /*artifacts_on=*/false);

  // All classes backlogged; drain at a 40G wire for 100 ms.
  const sim::SimDuration horizon = sim::milliseconds(100);
  const Rate wire = Rate::gigabits_per_sec(40);
  std::vector<std::uint64_t> got(r.classes, 0);
  sim::SimTime now = 0;
  auto backlog_of = [&](unsigned i) {
    const auto& st = r.htb.class_stats("c" + std::to_string(i));
    return st.enq_packets - st.deq_packets - st.drops;
  };
  while (now < horizon) {
    for (unsigned i = 0; i < r.classes; ++i) {
      net::Packet p;
      p.app_id = i;
      p.wire_bytes = 1518;
      while (backlog_of(i) < 16) r.htb.enqueue(p, now);
    }
    if (auto pkt = r.htb.dequeue(now)) {
      got[pkt->app_id % r.classes] += pkt->wire_bytes;
      now += wire.serialization_delay(pkt->wire_occupancy_bytes());
    } else {
      const sim::SimTime next = r.htb.next_event(now);
      now = std::max(next == sim::kSimTimeMax ? now + 1000 : next, now + 100);
    }
  }

  double total_g = 0;
  for (unsigned i = 0; i < r.classes; ++i) {
    const double g = static_cast<double>(got[i]) * 8.0 / static_cast<double>(horizon);
    total_g += g;
    // Ceiling bound (+ burst slack).
    EXPECT_LE(g, r.ceils_g[i] + 0.5) << "class " << i;
    // Committed-rate guarantee: a backlogged class gets ≥ ~90% of its rate.
    EXPECT_GE(g, r.rates_g[i] * 0.9 - 0.15) << "class " << i;
  }
  // Root conservation (+ burst slack), and work conservation when the sum
  // of ceilings covers the root.
  EXPECT_LE(total_g, 10.6);
  double ceil_sum = 0;
  for (double c : r.ceils_g) ceil_sum += c;
  if (ceil_sum > 10.5) {
    EXPECT_GE(total_g, 9.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HtbRandomConfig, ::testing::Range<std::uint64_t>(1, 13));

class HtbArtifactSweep : public ::testing::TestWithParam<double> {};

TEST_P(HtbArtifactSweep, ChargeFactorScalesOvershootPredictably) {
  const double factor = GetParam();
  HtbArtifacts a;
  a.enabled = true;
  a.charge_factor = factor;
  HtbQdisc htb(Rate::gigabits_per_sec(5), Rate::gigabits_per_sec(5), a);
  HtbClassConfig c;
  c.name = "x";
  c.rate = Rate::gigabits_per_sec(5);
  c.queue_limit = 64;
  htb.add_class(c);
  htb.set_classifier([](const net::Packet&) { return "x"; });

  const sim::SimDuration horizon = sim::milliseconds(60);
  const Rate wire = Rate::gigabits_per_sec(40);
  std::uint64_t bytes = 0;
  sim::SimTime now = 0;
  while (now < horizon) {
    net::Packet p;
    p.wire_bytes = 1518;
    while (htb.backlog_packets() < 16) htb.enqueue(p, now);
    if (auto pkt = htb.dequeue(now)) {
      bytes += pkt->wire_bytes;
      now += wire.serialization_delay(pkt->wire_occupancy_bytes());
    } else {
      const sim::SimTime next = htb.next_event(now);
      now = std::max(next == sim::kSimTimeMax ? now + 1000 : next, now + 100);
    }
  }
  const double g = static_cast<double>(bytes) * 8.0 / static_cast<double>(horizon);
  // Measured rate ≈ configured rate / charge factor.
  EXPECT_NEAR(g, 5.0 / factor, 5.0 / factor * 0.1);
}

INSTANTIATE_TEST_SUITE_P(Factors, HtbArtifactSweep,
                         ::testing::Values(1.0, 0.9, 0.84, 0.7, 0.5));

}  // namespace
}  // namespace flowvalve::baseline
