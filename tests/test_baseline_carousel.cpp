// Unit tests for the Carousel timing-wheel shaper comparator.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/carousel.h"
#include "sim/simulator.h"

namespace flowvalve::baseline {
namespace {

using sim::Rate;

net::Packet packet_for(std::uint32_t app, std::uint32_t bytes = 1518) {
  net::Packet p;
  p.app_id = app;
  p.wire_bytes = bytes;
  return p;
}

std::unique_ptr<CarouselShaper> make_shaper(sim::Simulator& sim, Rate class_rate,
                                             CarouselConfig cfg = {}) {
  auto shaper = std::make_unique<CarouselShaper>(sim, cfg);
  shaper->set_rate_policy([class_rate](const net::Packet&) { return class_rate; });
  shaper->start();
  return shaper;
}

TEST(CarouselTest, PacesToConfiguredRate) {
  sim::Simulator sim;
  auto shaper_ptr = make_shaper(sim, Rate::gigabits_per_sec(2));
  CarouselShaper& shaper = *shaper_ptr;
  constexpr sim::SimTime kFrom = sim::milliseconds(10);
  constexpr sim::SimTime kTo = sim::milliseconds(50);
  std::uint64_t bytes = 0;
  shaper.set_on_delivered([&](const net::Packet& p) {
    if (p.wire_tx_done >= kFrom && p.wire_tx_done < kTo) bytes += p.wire_bytes;
  });
  // Offer 6G continuously; measure a steady-state window.
  const double gap = 1538.0 * 8e9 / 6e9;
  for (double t = 0; t < sim::milliseconds(60); t += gap)
    sim.schedule_at(static_cast<sim::SimTime>(t),
                    [&] { shaper.submit(packet_for(0)); });
  sim.run_until(sim::milliseconds(62));
  const double gbps = static_cast<double>(bytes) * 8.0 /
                      static_cast<double>(kTo - kFrom);
  EXPECT_NEAR(gbps, 2.0, 0.2);
  EXPECT_GT(shaper.stats().horizon_drops, 0u);  // the excess fell off the wheel
}

TEST(CarouselTest, UnderOfferedPassesEverything) {
  sim::Simulator sim;
  auto shaper_ptr = make_shaper(sim, Rate::gigabits_per_sec(5));
  CarouselShaper& shaper = *shaper_ptr;
  std::uint64_t delivered = 0;
  shaper.set_on_delivered([&](const net::Packet&) { ++delivered; });
  const double gap = 1538.0 * 8e9 / 1e9;  // 1G offered vs 5G pace
  std::uint64_t sent = 0;
  for (double t = 0; t < sim::milliseconds(20); t += gap) {
    sim.schedule_at(static_cast<sim::SimTime>(t), [&] {
      shaper.submit(packet_for(0));
      ++sent;
    });
  }
  sim.run_until(sim::milliseconds(25));
  EXPECT_EQ(delivered, sent);
  EXPECT_EQ(shaper.stats().horizon_drops, 0u);
}

TEST(CarouselTest, IndependentClassPacing) {
  sim::Simulator sim;
  CarouselConfig cfg;
  CarouselShaper shaper(sim, cfg);
  shaper.set_rate_policy([](const net::Packet& p) {
    return p.app_id == 0 ? Rate::gigabits_per_sec(3) : Rate::gigabits_per_sec(1);
  });
  shaper.start();
  // Count only deliveries whose wire time falls in a steady-state window,
  // while traffic keeps flowing (avoids startup/drain-out edge effects).
  constexpr sim::SimTime kFrom = sim::milliseconds(10);
  constexpr sim::SimTime kTo = sim::milliseconds(50);
  std::uint64_t bytes[2] = {};
  shaper.set_on_delivered([&](const net::Packet& p) {
    if (p.wire_tx_done >= kFrom && p.wire_tx_done < kTo) bytes[p.app_id] += p.wire_bytes;
  });
  const double gap = 1538.0 * 8e9 / 5e9;  // 5G offered per class
  for (double t = 0; t < sim::milliseconds(60); t += gap) {
    sim.schedule_at(static_cast<sim::SimTime>(t), [&] {
      shaper.submit(packet_for(0));
      shaper.submit(packet_for(1));
    });
  }
  sim.run_until(sim::milliseconds(62));
  const double window = static_cast<double>(kTo - kFrom);
  EXPECT_NEAR(static_cast<double>(bytes[0]) * 8.0 / window, 3.0, 0.3);
  EXPECT_NEAR(static_cast<double>(bytes[1]) * 8.0 / window, 1.0, 0.15);
}

TEST(CarouselTest, ZeroRatePolicyDrops) {
  sim::Simulator sim;
  auto shaper_ptr = make_shaper(sim, Rate::zero());
  CarouselShaper& shaper = *shaper_ptr;
  int drops = 0;
  shaper.set_on_dropped([&](const net::Packet&) { ++drops; });
  EXPECT_FALSE(shaper.submit(packet_for(0)));
  EXPECT_EQ(drops, 1);
  EXPECT_EQ(shaper.stats().policy_drops, 1u);
}

TEST(CarouselTest, PacingSmoothsBursts) {
  // A burst arriving at one instant leaves spaced at the pacing rate.
  sim::Simulator sim;
  CarouselConfig cfg;
  cfg.slot_width = sim::microseconds(2);
  CarouselShaper shaper(sim, cfg);
  shaper.set_rate_policy([](const net::Packet&) { return Rate::gigabits_per_sec(1); });
  shaper.start();
  std::vector<sim::SimTime> tx;
  shaper.set_on_delivered([&](const net::Packet& p) { tx.push_back(p.wire_tx_done); });
  for (int i = 0; i < 20; ++i) shaper.submit(packet_for(0));
  sim.run_until(sim::milliseconds(2));
  ASSERT_EQ(tx.size(), 20u);
  // Inter-departure ≈ 1538B at 1G = 12.3 µs (quantized by 2 µs slots).
  for (std::size_t i = 1; i < tx.size(); ++i)
    EXPECT_NEAR(static_cast<double>(tx[i] - tx[i - 1]), 12304.0, 2500.0);
}

// Regression: the horizon-drop path used to run `next_release_[app]`
// (a default-inserting/advancing lookup) and nothing ever pruned the map —
// under flow churn pacing state grew without bound and a drop could touch
// the release clock. Now only admitted packets create or advance an entry,
// and a dropped packet leaves the clock exactly where it was.
TEST(CarouselTest, HorizonDropLeavesPacingStateUntouched) {
  sim::Simulator sim;
  CarouselConfig cfg;
  cfg.slot_width = sim::microseconds(2);
  cfg.num_slots = 16;  // 32 µs horizon: trivial to overrun
  auto shaper_ptr = make_shaper(sim, Rate::megabits_per_sec(10), cfg);
  CarouselShaper& shaper = *shaper_ptr;
  sim.schedule_at(0, [&] {
    // First packet admits at t=0 and pushes app 0's release clock ~1.2 ms
    // out — far past the 32 µs wheel — so follow-ups are horizon drops
    // that must not consume pacing budget or add map entries.
    EXPECT_TRUE(shaper.submit(packet_for(0)));
    EXPECT_FALSE(shaper.submit(packet_for(0)));
    EXPECT_FALSE(shaper.submit(packet_for(0)));
    EXPECT_EQ(shaper.stats().horizon_drops, 2u);
    EXPECT_EQ(shaper.pacing_flows(), 1u);
  });
  // Had the drops advanced the clock (2 × ~1.2 ms), the class would still
  // be blocked at t=2 ms; instead its entry expired at ~1.2 ms, a GC sweep
  // (every 32 µs here) pruned it, and a fresh packet admits immediately.
  sim.schedule_at(sim::milliseconds(2), [&] {
    EXPECT_EQ(shaper.pacing_flows(), 0u);
    EXPECT_GE(shaper.stats().pacing_evictions, 1u);
    EXPECT_TRUE(shaper.submit(packet_for(0)));
    EXPECT_EQ(shaper.stats().horizon_drops, 2u);
  });
  sim.run_until(sim::milliseconds(3));
}

TEST(CarouselTest, IdlePacingStateIsGarbageCollected) {
  sim::Simulator sim;
  CarouselConfig cfg;
  cfg.slot_width = sim::microseconds(8);
  cfg.num_slots = 64;  // one revolution (= GC cadence) every 512 µs
  auto shaper_ptr = make_shaper(sim, Rate::gigabits_per_sec(5), cfg);
  CarouselShaper& shaper = *shaper_ptr;
  // Ten classes send one packet each, then go idle forever.
  sim.schedule_at(0, [&] {
    for (std::uint32_t app = 0; app < 10; ++app)
      EXPECT_TRUE(shaper.submit(packet_for(app)));
  });
  sim.schedule_at(sim::microseconds(100),
                  [&] { EXPECT_EQ(shaper.pacing_flows(), 10u); });
  // After a full revolution every release clock has fallen behind `now`,
  // so the sweep evicts all ten entries.
  sim.run_until(sim::milliseconds(2));
  EXPECT_EQ(shaper.pacing_flows(), 0u);
  EXPECT_EQ(shaper.stats().pacing_evictions, 10u);
}

TEST(CarouselTest, ActiveFlowSurvivesGcAndStaysPaced) {
  // GC must never evict a class whose release clock is still ahead of
  // `now` — otherwise an active flow would forget its pacing debt and
  // burst. Keep one flow saturated across many GC sweeps and check the
  // paced rate still holds.
  sim::Simulator sim;
  CarouselConfig cfg;
  cfg.num_slots = 256;  // GC every ~2 ms with 8 µs slots
  auto shaper_ptr = make_shaper(sim, Rate::gigabits_per_sec(2), cfg);
  CarouselShaper& shaper = *shaper_ptr;
  constexpr sim::SimTime kFrom = sim::milliseconds(10);
  constexpr sim::SimTime kTo = sim::milliseconds(50);
  std::uint64_t bytes = 0;
  shaper.set_on_delivered([&](const net::Packet& p) {
    if (p.wire_tx_done >= kFrom && p.wire_tx_done < kTo) bytes += p.wire_bytes;
  });
  const double gap = 1538.0 * 8e9 / 4e9;  // 4G offered vs 2G pace
  for (double t = 0; t < sim::milliseconds(60); t += gap)
    sim.schedule_at(static_cast<sim::SimTime>(t),
                    [&] { shaper.submit(packet_for(0)); });
  sim.run_until(sim::milliseconds(62));
  const double gbps =
      static_cast<double>(bytes) * 8.0 / static_cast<double>(kTo - kFrom);
  EXPECT_NEAR(gbps, 2.0, 0.2);
  EXPECT_LE(shaper.pacing_flows(), 1u);
}

TEST(CarouselTest, SingleCoreCostModel) {
  sim::Simulator sim;
  auto shaper_ptr = make_shaper(sim, Rate::gigabits_per_sec(9));
  CarouselShaper& shaper = *shaper_ptr;
  const double gap = 1538.0 * 8e9 / 8e9;
  for (double t = 0; t < sim::milliseconds(10); t += gap)
    sim.schedule_at(static_cast<sim::SimTime>(t),
                    [&] { shaper.submit(packet_for(0)); });
  sim.run_until(sim::milliseconds(12));
  // ~650 kpps at ~675 cycles/packet on 2.3 GHz → well under one core.
  EXPECT_LT(shaper.cores_used(sim.now()), 0.5);
  EXPECT_GT(shaper.cores_used(sim.now()), 0.01);
}

}  // namespace
}  // namespace flowvalve::baseline
