// Differential tests for the event kernel: the pooled timing-wheel backend
// must be observationally identical to the legacy binary-heap reference —
// same execution order (including same-instant FIFO), same clock readings,
// same events_executed(), same end-to-end scenario stats — across random
// workloads, multi-level cascades, horizon peeks, and the fuzz harness's
// full NP scenarios.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "check/runner.h"
#include "sim/simulator.h"

namespace flowvalve::sim {
namespace {

/// One executed event: (clock when it ran, identifying tag).
using Trace = std::vector<std::pair<SimTime, int>>;

/// Random closed workload: `n` root events at random offsets; each event
/// reschedules children with random deltas (0 included, so same-instant
/// FIFO is exercised), occasionally cancels a sibling, and a few periodic
/// timers tick until a scripted stop. Deterministic per seed.
Trace run_random_workload(SchedulerKind kind, std::uint64_t seed) {
  Simulator sim(kind);
  Trace trace;
  std::uint64_t lcg = seed * 2654435761u + 1;
  auto rnd = [&lcg](std::uint64_t mod) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return (lcg >> 33) % mod;
  };

  std::vector<EventHandle> handles;
  int next_tag = 0;
  // Recursive generator: each event logs itself and spawns 0-2 children
  // until the tag budget is spent. Deltas span level-0 instants (0-4095 ns)
  // and multi-level jumps (up to ~1 ms) so cascades run on every seed.
  std::function<void(int)> spawn = [&](int depth) {
    const int tag = next_tag++;
    if (tag > 4000) return;
    const SimDuration delta =
        rnd(8) == 0 ? 0
                    : (rnd(4) == 0 ? static_cast<SimDuration>(rnd(1'000'000))
                                   : static_cast<SimDuration>(rnd(3000)));
    handles.push_back(sim.schedule_after(delta, [&, tag, depth] {
      trace.emplace_back(sim.now(), tag);
      if (depth < 12) {
        const std::uint64_t kids = rnd(3);
        for (std::uint64_t k = 0; k < kids; ++k) spawn(depth + 1);
      }
      if (rnd(5) == 0 && !handles.empty()) {
        handles[rnd(handles.size())].cancel();  // may hit fired/cancelled ones
      }
    }));
  };
  for (int i = 0; i < 40; ++i) spawn(0);

  // Periodic timers ticking through the same window; one cancels itself
  // from inside its own callback (the rearm-in-place edge case).
  int ticks = 0;
  EventHandle periodic = sim.schedule_periodic(
      microseconds(7), [&] { trace.emplace_back(sim.now(), -1); });
  EventHandle self_stop;
  self_stop = sim.schedule_periodic(microseconds(11), [&] {
    trace.emplace_back(sim.now(), -2);
    if (++ticks == 5) self_stop.cancel();
  });

  sim.run_until(milliseconds(2));
  periodic.cancel();
  sim.run_all();
  trace.emplace_back(sim.now(), static_cast<int>(sim.events_executed()));
  return trace;
}

TEST(SimKernelDiff, RandomWorkloadsExecuteIdentically) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1337ull, 0xfeedull}) {
    const Trace heap = run_random_workload(SchedulerKind::kHeap, seed);
    const Trace wheel = run_random_workload(SchedulerKind::kWheel, seed);
    ASSERT_EQ(heap, wheel) << "divergence at seed " << seed;
  }
}

TEST(SimKernelDiff, FarFutureCascadesPreserveOrder) {
  // Instants spread across every wheel level (level 0 spans 4096 ns; each
  // higher level multiplies the span by 256), scheduled in scrambled order.
  const std::vector<SimTime> instants = {
      5,       4099,          4096 + 3,        (1ll << 20) + 7,
      1 << 12, (1ll << 28),   (1ll << 36) + 1, (1ll << 44) + 123,
      3,       (1ll << 52),   (1ll << 20) + 7,  // duplicate instant: FIFO
  };
  for (SchedulerKind kind : {SchedulerKind::kHeap, SchedulerKind::kWheel}) {
    Simulator sim(kind);
    std::vector<std::pair<SimTime, std::size_t>> fired;
    // Scramble: schedule in an order that differs from time order.
    const std::size_t scramble[] = {7, 2, 9, 0, 5, 10, 1, 8, 3, 6, 4};
    for (std::size_t i : scramble) {
      sim.schedule_at(instants[i], [&, i] {
        fired.emplace_back(sim.now(), i);
      });
    }
    sim.run_all();
    ASSERT_EQ(fired.size(), instants.size());
    for (std::size_t k = 0; k < fired.size(); ++k)
      EXPECT_EQ(fired[k].first, instants[fired[k].second]);
    for (std::size_t k = 1; k < fired.size(); ++k)
      ASSERT_LE(fired[k - 1].first, fired[k].first) << "out of time order";
    // Same-instant pairs must fire in scheduling order: index 2 was
    // scheduled before index 1 (both at t=4099), index 10 before index 3
    // (both at t=2^20+7).
    auto pos = [&](std::size_t idx) {
      for (std::size_t k = 0; k < fired.size(); ++k)
        if (fired[k].second == idx) return k;
      return fired.size();
    };
    EXPECT_LT(pos(2), pos(1));
    EXPECT_LT(pos(10), pos(3));
  }
}

TEST(SimKernelDiff, EarlyInsertAfterHorizonPeekStaysOrdered) {
  // A horizon peek may advance the wheel cursor past now(); an event then
  // scheduled between now() and the cursor must still fire first (it rides
  // the sorted early side-list).
  for (SchedulerKind kind : {SchedulerKind::kHeap, SchedulerKind::kWheel}) {
    Simulator sim(kind);
    std::vector<int> order;
    sim.schedule_at(1000, [&] { order.push_back(1); });
    sim.schedule_at(5000, [&] { order.push_back(3); });
    EXPECT_EQ(sim.run_until(2000), 1u);  // fires A, peeks at B past horizon
    EXPECT_EQ(sim.now(), 2000);
    sim.schedule_at(3000, [&] { order.push_back(2); });  // behind the peek
    sim.run_all();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.events_executed(), 3u);
  }
}

TEST(SimKernelDiff, CancelledTopDoesNotGateHorizon) {
  // Regression: a cancelled earliest event must neither fire, nor stop a
  // live later-but-within-horizon event from firing, nor corrupt the
  // next-event peek.
  for (SchedulerKind kind : {SchedulerKind::kHeap, SchedulerKind::kWheel}) {
    Simulator sim(kind);
    int fired = 0;
    EventHandle a = sim.schedule_at(100, [&] { fired += 100; });
    sim.schedule_at(200, [&] { fired += 1; });
    a.cancel();
    EXPECT_FALSE(a.pending());
    EXPECT_EQ(sim.run_until(250), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.events_executed(), 1u);
  }
}

TEST(SimKernelDiff, PeriodicRearmMatchesHeapEmulation) {
  for (SchedulerKind kind : {SchedulerKind::kHeap, SchedulerKind::kWheel}) {
    Simulator sim(kind);
    std::vector<SimTime> at;
    EventHandle h = sim.schedule_periodic(250, [&] { at.push_back(sim.now()); });
    sim.run_until(2000);
    EXPECT_TRUE(h.pending());  // periodic events stay pending across firings
    h.cancel();
    sim.run_all();
    ASSERT_EQ(at.size(), 8u);
    for (std::size_t i = 0; i < at.size(); ++i)
      EXPECT_EQ(at[i], static_cast<SimTime>(250 * (i + 1)));
    EXPECT_EQ(sim.events_executed(), 8u);
  }
}

// Heap and wheel runs are compared wholesale via the canonical
// check::report_fingerprint (every CheckReport field, hexfloat doubles).
using check::report_fingerprint;

TEST(SimKernelDiff, FuzzScenariosProduceIdenticalStats) {
  // Full NP-stack differential: same fuzz seeds, both backends, identical
  // event counts and pipeline counter snapshots. Seeds cover the standard
  // scenario family; one chaos run exercises fault-plane timers too.
  for (std::uint64_t seed : {2ull, 3ull, 17ull}) {
    check::RunOptions heap_opts, wheel_opts;
    heap_opts.scheduler = SchedulerKind::kHeap;
    wheel_opts.scheduler = SchedulerKind::kWheel;
    const check::CheckReport h = check::run_seed(seed, heap_opts);
    const check::CheckReport w = check::run_seed(seed, wheel_opts);
    EXPECT_EQ(report_fingerprint(h), report_fingerprint(w))
        << "seed " << seed;
    EXPECT_EQ(h.violation_total, 0u) << h.summary();
  }
  check::RunOptions heap_opts, wheel_opts;
  heap_opts.chaos = wheel_opts.chaos = true;
  heap_opts.scheduler = SchedulerKind::kHeap;
  wheel_opts.scheduler = SchedulerKind::kWheel;
  const check::CheckReport h = check::run_seed(5, heap_opts);
  const check::CheckReport w = check::run_seed(5, wheel_opts);
  EXPECT_EQ(report_fingerprint(h), report_fingerprint(w));
}

}  // namespace
}  // namespace flowvalve::sim
