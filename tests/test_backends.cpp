// Tier-1 coverage for the SchedulerBackend seam: every promoted discipline
// (FlowValve tree, PIFO/STFQ valve, Eiffel calendar, SP-PIFO banding) must
// pass the discipline-generic invariant checkers under fuzz and chaos, hold
// the FV-vs-HTB weighted-share oracle, agree with itself across batch
// sizes, and replay deterministically. Engine-level tests pin the rank
// valves' discipline semantics (weighted shares, calendar activity, band
// adaptation) that the scenario battery can't observe directly.
#include <gtest/gtest.h>

#include <string>

#include "check/fuzzer.h"
#include "check/runner.h"
#include "core/flowvalve.h"
#include "core/rank_backends.h"

namespace flowvalve::check {
namespace {

using core::BackendKind;

constexpr BackendKind kAllBackends[] = {
    BackendKind::kFlowValve, BackendKind::kStfq, BackendKind::kEiffel,
    BackendKind::kSpPifo};
constexpr BackendKind kRankBackends[] = {
    BackendKind::kStfq, BackendKind::kEiffel, BackendKind::kSpPifo};

RunOptions with_backend(BackendKind kind) {
  RunOptions opts;
  opts.backend = kind;
  return opts;
}

TEST(BackendKindNames, RoundTripAndAliases) {
  for (BackendKind kind : kAllBackends) {
    BackendKind parsed = BackendKind::kFlowValve;
    ASSERT_TRUE(core::parse_backend_kind(core::backend_kind_name(kind), parsed));
    EXPECT_EQ(parsed, kind);
  }
  BackendKind k = BackendKind::kFlowValve;
  EXPECT_TRUE(core::parse_backend_kind("pifo", k));
  EXPECT_EQ(k, BackendKind::kStfq);
  EXPECT_TRUE(core::parse_backend_kind("sp-pifo", k));
  EXPECT_EQ(k, BackendKind::kSpPifo);
  EXPECT_FALSE(core::parse_backend_kind("fifo", k));
  EXPECT_EQ(k, BackendKind::kSpPifo);  // untouched on failure
}

TEST(BackendFuzz, SeedsDeriveEveryBackend) {
  // The seed-derived backend draw must actually reach every discipline so
  // the default corpus soaks all of them (weighted toward FlowValve).
  unsigned counts[4] = {0, 0, 0, 0};
  for (std::uint64_t seed = 1; seed <= 40; ++seed)
    ++counts[static_cast<unsigned>(generate_scenario(seed).nic.backend)];
  for (unsigned c : counts) EXPECT_GT(c, 0u);
  EXPECT_GT(counts[0], counts[1]);  // FlowValve keeps the plurality
}

TEST(BackendFuzz, StandardBatteryCleanPerBackend) {
  for (BackendKind kind : kAllBackends) {
    const RunOptions opts = with_backend(kind);
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const CheckReport report = run_seed(seed, opts);
      EXPECT_TRUE(report.ok())
          << core::backend_kind_name(kind) << ": " << report.summary();
      EXPECT_EQ(report.backend, kind);
      EXPECT_GT(report.delivered, 0u);
    }
  }
}

TEST(BackendFuzz, DifferentialShareOracleHoldsPerBackend) {
  // Saturated classes must converge to the same weighted-fair shares the
  // reference HTB produces — for the rank valves that is the STFQ
  // guarantee (a saturated class admits at w · link), for FlowValve it is
  // the paper's Eq. 1 machinery. Same oracle, same tolerance.
  for (BackendKind kind : kAllBackends) {
    RunOptions opts = with_backend(kind);
    opts.differential = true;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const CheckReport report = run_seed(seed, opts);
      EXPECT_TRUE(report.ok())
          << core::backend_kind_name(kind) << ": " << report.summary();
      EXPECT_LE(report.worst_share_delta, opts.share_tolerance);
    }
  }
}

TEST(BackendFuzz, ChaosBatteryCleanPerBackend) {
  for (BackendKind kind : kAllBackends) {
    RunOptions opts = with_backend(kind);
    opts.chaos = true;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const CheckReport report = run_seed(seed, opts);
      EXPECT_TRUE(report.ok())
          << core::backend_kind_name(kind) << ": " << report.summary();
    }
  }
}

TEST(BackendFuzz, BatchOneVsThirtyTwoAgreePerBackend) {
  // The batching path must not change what a discipline admits. FlowValve
  // replays are exact by construction (test_np_batch_diff pins the full
  // fingerprint); the rank valves run the complete discipline per packet,
  // so both batch sizes must stay invariant-clean and land on the same
  // aggregate admission behavior (burst timestamps shift slightly between
  // batch sizes, so the comparison is a tight tolerance, not bit equality).
  for (BackendKind kind : kAllBackends) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      RunOptions opts = with_backend(kind);
      opts.batch_size = 1;
      const CheckReport one = run_seed(seed, opts);
      opts.batch_size = 32;
      const CheckReport batched = run_seed(seed, opts);
      EXPECT_TRUE(one.ok())
          << core::backend_kind_name(kind) << ": " << one.summary();
      EXPECT_TRUE(batched.ok())
          << core::backend_kind_name(kind) << ": " << batched.summary();
      EXPECT_EQ(one.nic.submitted, batched.nic.submitted);
      const double a = static_cast<double>(one.delivered);
      const double b = static_cast<double>(batched.delivered);
      ASSERT_GT(a, 0.0);
      EXPECT_NEAR(b / a, 1.0, 0.02)
          << core::backend_kind_name(kind) << " seed " << seed << ": batch1 "
          << one.delivered << " vs batch32 " << batched.delivered;
    }
  }
}

TEST(BackendFuzz, SameSeedReplaysIdenticallyPerBackend) {
  for (BackendKind kind : kAllBackends) {
    const RunOptions opts = with_backend(kind);
    const CheckReport a = run_seed(5, opts);
    const CheckReport b = run_seed(5, opts);
    EXPECT_EQ(a.summary(), b.summary());
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.nic.forwarded_to_wire, b.nic.forwarded_to_wire);
  }
}

TEST(BackendFuzz, RankBackendsDivergeFromFlowValve) {
  // The strategies must actually be different disciplines, not relabeled
  // FlowValve: on a contended scenario the admission pattern differs.
  const CheckReport fv = run_seed(8, with_backend(BackendKind::kFlowValve));
  const CheckReport stfq = run_seed(8, with_backend(BackendKind::kStfq));
  ASSERT_TRUE(fv.ok() && stfq.ok());
  EXPECT_EQ(fv.nic.submitted, stfq.nic.submitted);
  EXPECT_NE(fv.nic.forwarded_to_wire, stfq.nic.forwarded_to_wire);
}

// ---------------------------------------------------------------------------
// Engine-level discipline semantics.

core::FlowValveEngine make_engine(BackendKind kind) {
  core::FlowValveEngine::Options opt;
  opt.backend = kind;
  core::FlowValveEngine engine(opt);
  const std::string err = engine.configure(
      "fv qdisc add dev nic0 root handle 1: htb rate 8gbit\n"
      "fv class add dev nic0 parent 1: classid 1:10 name a weight 3\n"
      "fv class add dev nic0 parent 1: classid 1:11 name b weight 1\n"
      "fv filter add dev nic0 pref 1 vf 0 classid 1:10\n"
      "fv filter add dev nic0 pref 2 vf 1 classid 1:11\n");
  EXPECT_EQ(err, "");
  EXPECT_EQ(engine.backend_kind(), kind);
  return engine;
}

net::Packet packet_on(std::uint16_t vf, std::uint32_t bytes = 1000) {
  net::Packet p;
  p.vf_port = vf;
  p.wire_bytes = bytes;
  p.tuple.src_ip = 0x0a000001u + vf;
  p.tuple.dst_ip = 0x0a000002;
  p.tuple.src_port = static_cast<std::uint16_t>(1000 + vf);
  p.tuple.dst_port = 80;
  return p;
}

/// Offer both classes far above the link rate; returns forwarded bytes per
/// class over `duration`.
void saturate(core::FlowValveEngine& engine, sim::SimDuration duration,
              std::uint64_t fwd_bytes[2]) {
  fwd_bytes[0] = fwd_bytes[1] = 0;
  const double gap_ns = 400.0;  // 2 × 1000B / 400ns ≈ 40 Gbps offered total
  for (double t = 0; t < static_cast<double>(duration); t += gap_ns) {
    for (std::uint16_t vf = 0; vf < 2; ++vf) {
      net::Packet p = packet_on(vf);
      const auto r = engine.process(p, static_cast<sim::SimTime>(t));
      if (r.verdict == core::Verdict::kForward) fwd_bytes[vf] += p.wire_bytes;
    }
  }
}

TEST(RankValves, StfqConvergesToWeightedShares) {
  auto engine = make_engine(BackendKind::kStfq);
  std::uint64_t fwd[2];
  saturate(engine, sim::milliseconds(50), fwd);
  ASSERT_GT(fwd[1], 0u);
  // weight 3 vs 1 → 3:1 split of the saturated link.
  EXPECT_NEAR(static_cast<double>(fwd[0]) / static_cast<double>(fwd[1]), 3.0,
              0.25);
  const auto& st = engine.backend().stats();
  EXPECT_GT(st.rank_admissions, 0u);
  EXPECT_GT(st.rank_lead_drops, 0u);
  EXPECT_EQ(st.forwarded, st.rank_admissions);
}

TEST(RankValves, EiffelCalendarTracksAdmissionsAndRebases) {
  auto engine = make_engine(BackendKind::kEiffel);
  std::uint64_t fwd[2];
  saturate(engine, sim::milliseconds(50), fwd);
  EXPECT_NEAR(static_cast<double>(fwd[0]) / static_cast<double>(fwd[1]), 3.0,
              0.25);
  const auto& st = engine.backend().stats();
  EXPECT_GT(st.rank_admissions, 0u);
  // 50 ms of a saturated 8G link sweeps virtual time across the wheel many
  // times over: the calendar must have rebased rather than overflowed, and
  // drained entries must keep the backlog bounded by the wheel size.
  EXPECT_GT(st.calendar_rebases, 0u);
  auto& eiffel = static_cast<core::EiffelBackend&>(engine.backend());
  EXPECT_LE(eiffel.calendar_backlog(), core::EiffelBackend::kWheelBuckets);
}

TEST(RankValves, SpPifoAdaptsBandsAndMatchesStfqAdmission) {
  auto engine = make_engine(BackendKind::kSpPifo);
  std::uint64_t fwd[2];
  saturate(engine, sim::milliseconds(50), fwd);
  EXPECT_NEAR(static_cast<double>(fwd[0]) / static_cast<double>(fwd[1]), 3.0,
              0.25);
  const auto& st = engine.backend().stats();
  EXPECT_GT(st.rank_admissions, 0u);
  EXPECT_GT(st.band_adaptations, 0u);
  auto& sp = static_cast<core::SpPifoBackend&>(engine.backend());
  std::uint64_t banded = 0;
  for (std::uint64_t c : sp.band_admits()) banded += c;
  EXPECT_EQ(banded, st.rank_admissions);
  // Bounds stay ordered (ascending) through push-up/push-down adaptation.
  for (std::size_t i = 1; i < core::SpPifoBackend::kBands; ++i)
    EXPECT_LE(sp.bounds()[i - 1], sp.bounds()[i]);
}

TEST(RankValves, SchedulerAccessorValidOnlyUnderFlowValve) {
  auto fv = make_engine(BackendKind::kFlowValve);
  EXPECT_EQ(&fv.scheduler(), &fv.backend());  // same object, two views
#if GTEST_HAS_DEATH_TEST && !defined(NDEBUG)
  auto stfq = make_engine(BackendKind::kStfq);
  EXPECT_DEATH(stfq.scheduler(), "FlowValve backend");
#endif
}

}  // namespace
}  // namespace flowvalve::check
