// Determinism regression: the whole stack (fuzzer expansion, discrete-event
// kernel, NP pipeline, FlowValve engine, traffic generators) must produce
// bit-identical results for the same seed. Any drift here breaks "failing
// seed = repro" for the fuzz_check driver.
#include <gtest/gtest.h>

#include "check/runner.h"

namespace flowvalve::check {
namespace {

void expect_identical(const CheckReport& a, const CheckReport& b) {
  EXPECT_EQ(a.nic.submitted, b.nic.submitted);
  EXPECT_EQ(a.nic.vf_ring_drops, b.nic.vf_ring_drops);
  EXPECT_EQ(a.nic.scheduler_drops, b.nic.scheduler_drops);
  EXPECT_EQ(a.nic.tx_ring_drops, b.nic.tx_ring_drops);
  EXPECT_EQ(a.nic.forwarded_to_wire, b.nic.forwarded_to_wire);
  EXPECT_EQ(a.nic.wire_bytes, b.nic.wire_bytes);
  EXPECT_EQ(a.nic.worker_busy_ns, b.nic.worker_busy_ns);
  EXPECT_EQ(a.nic.processed, b.nic.processed);
  EXPECT_EQ(a.nic.processing_cycles, b.nic.processing_cycles);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.violation_total, b.violation_total);
}

TEST(Determinism, SameSeedSameStats) {
  for (std::uint64_t seed : {1ull, 9ull, 42ull}) {
    const CheckReport a = run_seed(seed);
    const CheckReport b = run_seed(seed);
    expect_identical(a, b);
  }
}

TEST(Determinism, DifferentSeedsDiverge) {
  const CheckReport a = run_seed(1);
  const CheckReport b = run_seed(2);
  // Two different random scenarios agreeing on all of these at once would
  // be astronomically unlikely — and would mean the seed isn't being used.
  EXPECT_FALSE(a.nic.submitted == b.nic.submitted &&
               a.nic.wire_bytes == b.nic.wire_bytes && a.events == b.events);
}

TEST(Determinism, DifferentialRunIsDeterministic) {
  RunOptions opts;
  opts.differential = true;
  const CheckReport a = run_seed(3, opts);
  const CheckReport b = run_seed(3, opts);
  expect_identical(a, b);
  ASSERT_EQ(a.fv_shares.size(), b.fv_shares.size());
  for (std::size_t i = 0; i < a.fv_shares.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.fv_shares[i], b.fv_shares[i]);
    EXPECT_DOUBLE_EQ(a.ref_shares[i], b.ref_shares[i]);
  }
  EXPECT_DOUBLE_EQ(a.worst_share_delta, b.worst_share_delta);
}

TEST(Determinism, FaultInjectionIsDeterministic) {
  RunOptions opts;
  opts.faults.leak_commit_every = 97;
  const CheckReport a = run_seed(1, opts);
  const CheckReport b = run_seed(1, opts);
  expect_identical(a, b);
  ASSERT_EQ(a.violations.size(), b.violations.size());
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].checker, b.violations[i].checker);
    EXPECT_EQ(a.violations[i].at, b.violations[i].at);
    EXPECT_EQ(a.violations[i].detail, b.violations[i].detail);
  }
}

}  // namespace
}  // namespace flowvalve::check
