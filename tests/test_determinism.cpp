// Determinism regression: the whole stack (fuzzer expansion, discrete-event
// kernel, NP pipeline, FlowValve engine, traffic generators) must produce
// bit-identical results for the same seed. Any drift here breaks "failing
// seed = repro" for the fuzz_check driver.
#include <gtest/gtest.h>

#include "check/runner.h"
#include "fault/fault.h"

namespace flowvalve::check {
namespace {

void expect_identical(const CheckReport& a, const CheckReport& b) {
  EXPECT_EQ(a.nic.submitted, b.nic.submitted);
  EXPECT_EQ(a.nic.vf_ring_drops, b.nic.vf_ring_drops);
  EXPECT_EQ(a.nic.scheduler_drops, b.nic.scheduler_drops);
  EXPECT_EQ(a.nic.tx_ring_drops, b.nic.tx_ring_drops);
  EXPECT_EQ(a.nic.reorder_flush_drops, b.nic.reorder_flush_drops);
  EXPECT_EQ(a.nic.forwarded_to_wire, b.nic.forwarded_to_wire);
  EXPECT_EQ(a.nic.wire_bytes, b.nic.wire_bytes);
  EXPECT_EQ(a.nic.worker_busy_ns, b.nic.worker_busy_ns);
  EXPECT_EQ(a.nic.processed, b.nic.processed);
  EXPECT_EQ(a.nic.processing_cycles, b.nic.processing_cycles);
  // Robustness-layer counters: the watchdog, reorder-timeout, and admission
  // paths must be just as replayable as the happy path.
  EXPECT_EQ(a.nic.watchdog_requeues, b.nic.watchdog_requeues);
  EXPECT_EQ(a.nic.watchdog_drops, b.nic.watchdog_drops);
  EXPECT_EQ(a.nic.reorder_timeout_flushes, b.nic.reorder_timeout_flushes);
  EXPECT_EQ(a.nic.reorder_timeout_drops, b.nic.reorder_timeout_drops);
  EXPECT_EQ(a.nic.admission_drops, b.nic.admission_drops);
  EXPECT_EQ(a.nic.workers_repaired, b.nic.workers_repaired);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.violation_total, b.violation_total);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.faults_recovered, b.faults_recovered);
  EXPECT_EQ(a.packets_lost_to_faults, b.packets_lost_to_faults);
  EXPECT_EQ(a.worst_recovery, b.worst_recovery);
  // Control-plane reconfiguration counters: live swaps (and their rollbacks)
  // must replay exactly, or a failing --reconfig seed is not a repro.
  EXPECT_EQ(a.reconfigs_applied, b.reconfigs_applied);
  EXPECT_EQ(a.reconfigs_committed, b.reconfigs_committed);
  EXPECT_EQ(a.reconfigs_rolled_back, b.reconfigs_rolled_back);
  EXPECT_EQ(a.mixed_epoch_packets, b.mixed_epoch_packets);
}

TEST(Determinism, SameSeedSameStats) {
  for (std::uint64_t seed : {1ull, 9ull, 42ull}) {
    const CheckReport a = run_seed(seed);
    const CheckReport b = run_seed(seed);
    expect_identical(a, b);
  }
}

TEST(Determinism, DifferentSeedsDiverge) {
  const CheckReport a = run_seed(1);
  const CheckReport b = run_seed(2);
  // Two different random scenarios agreeing on all of these at once would
  // be astronomically unlikely — and would mean the seed isn't being used.
  EXPECT_FALSE(a.nic.submitted == b.nic.submitted &&
               a.nic.wire_bytes == b.nic.wire_bytes && a.events == b.events);
}

TEST(Determinism, DifferentialRunIsDeterministic) {
  RunOptions opts;
  opts.differential = true;
  const CheckReport a = run_seed(3, opts);
  const CheckReport b = run_seed(3, opts);
  expect_identical(a, b);
  ASSERT_EQ(a.fv_shares.size(), b.fv_shares.size());
  for (std::size_t i = 0; i < a.fv_shares.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.fv_shares[i], b.fv_shares[i]);
    EXPECT_DOUBLE_EQ(a.ref_shares[i], b.ref_shares[i]);
  }
  EXPECT_DOUBLE_EQ(a.worst_share_delta, b.worst_share_delta);
}

TEST(Determinism, FaultInjectionIsDeterministic) {
  RunOptions opts;
  fault::FaultEvent leak;
  leak.kind = fault::FaultKind::kLeakCommit;
  leak.at = 0;
  leak.duration = 0;  // permanent
  leak.period = 97;
  opts.faults.push_back(leak);
  const CheckReport a = run_seed(1, opts);
  const CheckReport b = run_seed(1, opts);
  expect_identical(a, b);
  ASSERT_FALSE(a.ok());  // the injected bug must actually fire
  ASSERT_EQ(a.violations.size(), b.violations.size());
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].checker, b.violations[i].checker);
    EXPECT_EQ(a.violations[i].at, b.violations[i].at);
    EXPECT_EQ(a.violations[i].detail, b.violations[i].detail);
  }
}

TEST(Determinism, FaultScheduleExpansionIsDeterministic) {
  const FuzzScenario sc = generate_scenario(11);
  const fault::FaultSchedule a =
      fault::generate_fault_schedule(11, sc.horizon, sc.nic);
  const fault::FaultSchedule b =
      fault::generate_fault_schedule(11, sc.horizon, sc.nic);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].duration, b[i].duration);
    EXPECT_EQ(a[i].worker, b[i].worker);
    EXPECT_EQ(a[i].worker_count, b[i].worker_count);
    EXPECT_DOUBLE_EQ(a[i].magnitude, b[i].magnitude);
    EXPECT_EQ(a[i].period, b[i].period);
  }
  EXPECT_EQ(fault::describe_schedule(a), fault::describe_schedule(b));
}

TEST(Determinism, ChaosRunIsDeterministic) {
  // Seeds chosen to exercise the recovery machinery (watchdog requeues,
  // reorder-timeout flushes, admission drops all nonzero on at least one).
  RunOptions opts;
  opts.chaos = true;
  for (std::uint64_t seed : {4ull, 6ull, 7ull}) {
    const CheckReport a = run_seed(seed, opts);
    const CheckReport b = run_seed(seed, opts);
    expect_identical(a, b);
    EXPECT_TRUE(a.ok()) << a.summary();
    EXPECT_GT(a.faults_injected, 0u);
  }
}

TEST(Determinism, ReconfigRunIsDeterministic) {
  // Seed-derived live policy updates (and the seed-picked control-plane
  // fault riding along) replay bit-identically.
  RunOptions opts;
  opts.reconfig_updates = 3;
  for (std::uint64_t seed : {3ull, 5ull}) {
    const CheckReport a = run_seed(seed, opts);
    const CheckReport b = run_seed(seed, opts);
    expect_identical(a, b);
    EXPECT_TRUE(a.ok()) << a.summary();
    EXPECT_GT(a.reconfigs_applied, 0u);
  }
}

TEST(Determinism, ChaosWithReconfigIsDeterministic) {
  RunOptions opts;
  opts.chaos = true;
  opts.reconfig_updates = 2;
  for (std::uint64_t seed : {8ull, 10ull}) {
    const CheckReport a = run_seed(seed, opts);
    const CheckReport b = run_seed(seed, opts);
    expect_identical(a, b);
    EXPECT_TRUE(a.ok()) << a.summary();
    EXPECT_GT(a.faults_injected, 0u);
    EXPECT_GT(a.reconfigs_applied, 0u);
  }
}

}  // namespace
}  // namespace flowvalve::check
