// Contract tests for the EgressDevice interface across every implementation:
// each submitted packet produces exactly one outcome (delivery or drop),
// callbacks can be installed/replaced, and devices tolerate missing
// callbacks.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/carousel.h"
#include "baseline/dpdk_sched.h"
#include "baseline/kernel_host.h"
#include "baseline/pifo.h"
#include "core/flowvalve.h"
#include "exp/scenarios.h"
#include "np/flowvalve_processor.h"
#include "np/nic_pipeline.h"
#include "sim/simulator.h"

namespace flowvalve {
namespace {

using sim::Rate;

struct Harness {
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;

  void attach(net::EgressDevice& dev) {
    dev.set_on_delivered([this](const net::Packet&) { ++delivered; });
    dev.set_on_dropped([this](const net::Packet&) { ++dropped; });
  }
};

net::Packet packet_for(std::uint32_t app, std::uint64_t id) {
  net::Packet p;
  p.id = id;
  p.app_id = app;
  p.flow_id = app;
  p.vf_port = static_cast<std::uint16_t>(app);
  p.wire_bytes = 1518;
  p.tuple.src_ip = 0x0a000001 + app;
  p.tuple.src_port = static_cast<std::uint16_t>(47000 + app);
  return p;
}

/// Submit N packets at a heavy rate, run to quiescence, and require
/// delivered + dropped == N.
void check_conservation(sim::Simulator& sim, net::EgressDevice& dev, Harness& h,
                        unsigned n) {
  for (unsigned i = 0; i < n; ++i) {
    const auto at = static_cast<sim::SimTime>(i) * 200;  // 5 Mpps offered
    sim.schedule_at(at, [&dev, i] { dev.submit(packet_for(i % 4, i)); });
  }
  sim.run_until(sim::seconds(2));
  EXPECT_EQ(h.delivered + h.dropped, n);
  EXPECT_GT(h.delivered, 0u);
}

TEST(DeviceContract, NicPipelineConservesPackets) {
  sim::Simulator sim;
  np::NpConfig nic = np::agilio_cx_10g();
  core::FlowValveEngine engine(np::engine_options_for(nic));
  ASSERT_EQ(engine.configure(exp::fair_queueing_script(nic.wire_rate, 4)), "");
  np::FlowValveProcessor proc(engine);
  np::NicPipeline dev(sim, nic, proc);
  Harness h;
  h.attach(dev);
  check_conservation(sim, dev, h, 5000);
}

TEST(DeviceContract, KernelHostConservesPackets) {
  sim::Simulator sim;
  baseline::KernelHostConfig cfg;
  auto fifo = std::make_unique<baseline::FifoQdisc>(64);
  baseline::KernelHostDevice dev(sim, cfg, std::move(fifo));
  Harness h;
  h.attach(dev);
  check_conservation(sim, dev, h, 3000);
}

TEST(DeviceContract, DpdkConservesPackets) {
  sim::Simulator sim;
  baseline::DpdkQosConfig cfg;
  baseline::DpdkQosScheduler dev(sim, cfg);
  for (int i = 0; i < 4; ++i) {
    baseline::DpdkPipeConfig pipe;
    pipe.name = "p" + std::to_string(i);
    pipe.queues.push_back({"q", 0, 1.0});
    dev.add_pipe(pipe);
  }
  dev.set_classifier(
      [](const net::Packet& p) { return "p" + std::to_string(p.app_id % 4) + "/q"; });
  dev.start();
  Harness h;
  h.attach(dev);
  check_conservation(sim, dev, h, 5000);
}

TEST(DeviceContract, PifoConservesPackets) {
  sim::Simulator sim;
  baseline::PifoConfig cfg;
  baseline::PifoScheduler dev(sim, cfg);
  for (int i = 0; i < 4; ++i) dev.add_class("c" + std::to_string(i), 1.0);
  dev.set_classifier([](const net::Packet& p) { return static_cast<int>(p.app_id % 4); });
  Harness h;
  h.attach(dev);
  check_conservation(sim, dev, h, 5000);
}

TEST(DeviceContract, CarouselConservesPackets) {
  sim::Simulator sim;
  baseline::CarouselConfig cfg;
  baseline::CarouselShaper dev(sim, cfg);
  dev.set_rate_policy([](const net::Packet&) { return Rate::gigabits_per_sec(2); });
  dev.start();
  Harness h;
  h.attach(dev);
  check_conservation(sim, dev, h, 5000);
}

TEST(DeviceContract, MissingCallbacksAreSafe) {
  // No callbacks installed at all: devices must not crash.
  sim::Simulator sim;
  np::NpConfig nic = np::agilio_cx_10g();
  np::NullProcessor proc;
  np::NicPipeline dev(sim, nic, proc);
  for (unsigned i = 0; i < 100; ++i) dev.submit(packet_for(i % 4, i));
  sim.run_until(sim::milliseconds(10));
  EXPECT_EQ(dev.stats().forwarded_to_wire, 100u);
}

TEST(DeviceContract, CallbacksReplaceable) {
  sim::Simulator sim;
  np::NpConfig nic = np::agilio_cx_10g();
  np::NullProcessor proc;
  np::NicPipeline dev(sim, nic, proc);
  int first = 0, second = 0;
  dev.set_on_delivered([&](const net::Packet&) { ++first; });
  dev.submit(packet_for(0, 1));
  sim.run_until(sim::milliseconds(1));
  dev.set_on_delivered([&](const net::Packet&) { ++second; });
  dev.submit(packet_for(0, 2));
  sim.run_until(sim::milliseconds(2));
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
}

}  // namespace
}  // namespace flowvalve
