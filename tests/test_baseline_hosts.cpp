// Unit tests for the PRIO qdisc, the kernel host model, and the DPDK QoS
// scheduler model.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/dpdk_sched.h"
#include "baseline/kernel_host.h"
#include "baseline/prio.h"
#include "sim/simulator.h"

namespace flowvalve::baseline {
namespace {

using sim::Rate;

net::Packet packet_for(std::uint32_t app, std::uint32_t bytes = 1518,
                       std::uint64_t id = 0) {
  net::Packet p;
  p.id = id;
  p.app_id = app;
  p.flow_id = app;
  p.wire_bytes = bytes;
  return p;
}

// ---- PRIO -------------------------------------------------------------------

PrioQdisc make_prio() {
  std::vector<std::unique_ptr<Qdisc>> bands;
  bands.push_back(std::make_unique<FifoQdisc>(8));
  bands.push_back(std::make_unique<FifoQdisc>(8));
  bands.push_back(std::make_unique<FifoQdisc>(8));
  return PrioQdisc(std::move(bands), [](const net::Packet& p) {
    return static_cast<int>(p.app_id);
  });
}

TEST(PrioQdiscTest, StrictBandOrder) {
  PrioQdisc prio = make_prio();
  prio.enqueue(packet_for(2), 0);
  prio.enqueue(packet_for(0), 0);
  prio.enqueue(packet_for(1), 0);
  prio.enqueue(packet_for(0), 0);
  EXPECT_EQ(prio.dequeue(0)->app_id, 0u);
  EXPECT_EQ(prio.dequeue(0)->app_id, 0u);
  EXPECT_EQ(prio.dequeue(0)->app_id, 1u);
  EXPECT_EQ(prio.dequeue(0)->app_id, 2u);
  EXPECT_FALSE(prio.dequeue(0).has_value());
}

TEST(PrioQdiscTest, OutOfRangeBandDrops) {
  PrioQdisc prio = make_prio();
  EXPECT_FALSE(prio.enqueue(packet_for(7), 0));
  EXPECT_EQ(prio.backlog_packets(), 0u);
}

TEST(PrioQdiscTest, BacklogAccounting) {
  PrioQdisc prio = make_prio();
  prio.enqueue(packet_for(0, 100), 0);
  prio.enqueue(packet_for(1, 200), 0);
  EXPECT_EQ(prio.backlog_packets(), 2u);
  EXPECT_EQ(prio.backlog_bytes(), 300u);
  EXPECT_EQ(prio.next_event(5), 5);
  prio.dequeue(0);
  prio.dequeue(0);
  EXPECT_EQ(prio.next_event(5), sim::kSimTimeMax);
}

TEST(FifoQdiscTest, TailDropAtLimit) {
  FifoQdisc fifo(2);
  EXPECT_TRUE(fifo.enqueue(packet_for(0), 0));
  EXPECT_TRUE(fifo.enqueue(packet_for(0), 0));
  EXPECT_FALSE(fifo.enqueue(packet_for(0), 0));
  EXPECT_EQ(fifo.drops(), 1u);
}

// ---- KernelHostDevice --------------------------------------------------------

TEST(KernelHost, DeliversThroughQdiscWithTimestamps) {
  sim::Simulator sim;
  KernelHostConfig cfg;
  cfg.wire_rate = Rate::gigabits_per_sec(40);
  auto fifo = std::make_unique<FifoQdisc>(1000);
  KernelHostDevice dev(sim, cfg, std::move(fifo));
  int delivered = 0;
  net::Packet seen;
  dev.set_on_delivered([&](const net::Packet& p) {
    ++delivered;
    seen = p;
  });
  dev.submit(packet_for(0, 1518, 7));
  sim.run_until(sim::milliseconds(10));
  ASSERT_EQ(delivered, 1);
  EXPECT_EQ(seen.id, 7u);
  EXPECT_GT(seen.wire_tx_done, 0);
  EXPECT_EQ(seen.delivered_at, seen.wire_tx_done + cfg.fixed_delay);
}

TEST(KernelHost, SingleCoreCapsThroughput) {
  // One app on one core, 64 KiB skbs: the sender-core cycle model caps
  // throughput near 9 Gbps even on a 40G wire.
  sim::Simulator sim;
  KernelHostConfig cfg;
  cfg.sender_cores = 4;
  cfg.wire_rate = Rate::gigabits_per_sec(40);
  KernelHostDevice dev(sim, cfg, std::make_unique<FifoQdisc>(64));
  std::uint64_t delivered_bytes = 0;
  dev.set_on_delivered(
      [&](const net::Packet& p) { delivered_bytes += p.wire_bytes; });
  // Offer 20G from a single app.
  const std::uint32_t bytes = 64 * 1024;
  const double gap = bytes * 8e9 / 20e9;
  for (double t = 0; t < sim::milliseconds(50); t += gap)
    sim.schedule_at(static_cast<sim::SimTime>(t),
                    [&dev, bytes] { dev.submit(packet_for(0, bytes)); });
  sim.run_until(sim::milliseconds(55));
  const double gbps = static_cast<double>(delivered_bytes) * 8.0 / sim::milliseconds(50);
  EXPECT_GT(gbps, 6.0);
  EXPECT_LT(gbps, 11.0);
  EXPECT_GT(dev.stats().socket_drops, 0u);
  EXPECT_GT(dev.cores_used(sim.now()), 0.8);
}

TEST(KernelHost, MultipleCoresScale) {
  sim::Simulator sim;
  KernelHostConfig cfg;
  cfg.sender_cores = 4;
  cfg.wire_rate = Rate::gigabits_per_sec(40);
  KernelHostDevice dev(sim, cfg, std::make_unique<FifoQdisc>(256));
  std::uint64_t delivered_bytes = 0;
  dev.set_on_delivered(
      [&](const net::Packet& p) { delivered_bytes += p.wire_bytes; });
  const std::uint32_t bytes = 64 * 1024;
  const double gap = bytes * 8e9 / 6e9;  // 6G per app, 4 apps = 24G offered
  for (double t = 0; t < sim::milliseconds(50); t += gap)
    for (std::uint32_t app = 0; app < 4; ++app)
      sim.schedule_at(static_cast<sim::SimTime>(t),
                      [&dev, bytes, app] { dev.submit(packet_for(app, bytes)); });
  sim.run_until(sim::milliseconds(55));
  const double gbps = static_cast<double>(delivered_bytes) * 8.0 / sim::milliseconds(50);
  // Four cores push well beyond the single-core cap.
  EXPECT_GT(gbps, 16.0);
}

TEST(KernelHost, LockContentionAccumulates) {
  sim::Simulator sim;
  KernelHostConfig cfg;
  cfg.sender_cores = 4;
  KernelHostDevice dev(sim, cfg, std::make_unique<FifoQdisc>(1000));
  for (int i = 0; i < 200; ++i)
    for (std::uint32_t app = 0; app < 4; ++app) dev.submit(packet_for(app, 1518));
  sim.run_until(sim::milliseconds(10));
  EXPECT_GT(dev.qdisc_lock_stats().total_wait, 0);
  EXPECT_GT(dev.qdisc_lock_stats().acquisitions, 400u);
}

TEST(KernelHost, CoreUtilizationVectorShape) {
  sim::Simulator sim;
  KernelHostConfig cfg;
  cfg.sender_cores = 3;
  KernelHostDevice dev(sim, cfg, std::make_unique<FifoQdisc>(16));
  dev.submit(packet_for(0));
  sim.run_until(sim::milliseconds(1));
  const auto util = dev.core_utilization(sim.now());
  ASSERT_EQ(util.size(), 4u);  // 3 senders + softirq
  EXPECT_GT(util[0], 0.0);
  EXPECT_DOUBLE_EQ(util[1], 0.0);
}

// ---- DpdkQosScheduler ---------------------------------------------------------

DpdkQosScheduler make_dpdk(sim::Simulator& sim, DpdkQosConfig cfg,
                           bool with_probe_pipe = false) {
  DpdkQosScheduler sched(sim, cfg);
  for (int i = 0; i < 2; ++i) {
    DpdkPipeConfig pipe;
    pipe.name = "p" + std::to_string(i);
    pipe.queues.push_back({"hi", 0, 1.0});
    pipe.queues.push_back({"lo", 1, 1.0});
    sched.add_pipe(pipe);
  }
  if (with_probe_pipe) {
    DpdkPipeConfig pipe;
    pipe.name = "probe";
    pipe.queues.push_back({"q", 0, 1.0});
    sched.add_pipe(pipe);
  }
  sched.set_classifier([](const net::Packet& p) -> std::string {
    switch (p.app_id) {
      case 0: return "p0/hi";
      case 1: return "p0/lo";
      case 2: return "p1/hi";
      default: return "p1/lo";
    }
  });
  return sched;
}

TEST(DpdkQos, EffectivePpsModel) {
  DpdkQosConfig cfg;
  cfg.run_cores = 1;
  EXPECT_NEAR(cfg.effective_pps() / 1e6, 2.277, 0.01);
  cfg.run_cores = 4;
  EXPECT_NEAR(cfg.effective_pps() / 1e6, 4 * 0.985 * 2.277, 0.05);
}

TEST(DpdkQos, DeliversAndTimestamps) {
  sim::Simulator sim;
  DpdkQosConfig cfg;
  auto sched = make_dpdk(sim, cfg);
  sched.start();
  int delivered = 0;
  sched.set_on_delivered([&](const net::Packet&) { ++delivered; });
  sched.submit(packet_for(0));
  sim.run_until(sim::milliseconds(5));
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(sched.stats().transmitted, 1u);
}

TEST(DpdkQos, UnmatchedClassifyDrops) {
  sim::Simulator sim;
  DpdkQosConfig cfg;
  DpdkQosScheduler sched(sim, cfg);
  DpdkPipeConfig pipe;
  pipe.name = "p0";
  pipe.queues.push_back({"q", 0, 1.0});
  sched.add_pipe(pipe);
  sched.set_classifier([](const net::Packet&) { return "nope/q"; });
  sched.start();
  int drops = 0;
  sched.set_on_dropped([&](const net::Packet&) { ++drops; });
  EXPECT_FALSE(sched.submit(packet_for(0)));
  EXPECT_EQ(drops, 1);
  EXPECT_EQ(sched.stats().classify_drops, 1u);
}

TEST(DpdkQos, QueueLimitDrops) {
  sim::Simulator sim;
  DpdkQosConfig cfg;
  cfg.queue_limit = 4;
  auto sched = make_dpdk(sim, cfg);
  sched.start();
  for (int i = 0; i < 10; ++i) sched.submit(packet_for(0));
  EXPECT_EQ(sched.stats().queue_drops, 6u);
  EXPECT_EQ(sched.queue_backlog("p0/hi"), 4u);
}

TEST(DpdkQos, StrictTcPriorityWithinPipe) {
  sim::Simulator sim;
  DpdkQosConfig cfg;
  cfg.port_rate = Rate::megabits_per_sec(100);  // slow wire serializes output
  auto sched = make_dpdk(sim, cfg);
  sched.start();
  std::vector<std::uint32_t> order;
  sched.set_on_delivered([&](const net::Packet& p) { order.push_back(p.app_id); });
  // Fill lo first, then hi: hi (TC0) must come out before lo (TC1).
  for (int i = 0; i < 4; ++i) sched.submit(packet_for(1));
  for (int i = 0; i < 4; ++i) sched.submit(packet_for(0));
  sim.run_until(sim::seconds(2));
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], 0u);
}

TEST(DpdkQos, WrrWeightsShareTc) {
  sim::Simulator sim;
  DpdkQosConfig cfg;
  cfg.port_rate = Rate::gigabits_per_sec(1);
  DpdkQosScheduler sched(sim, cfg);
  DpdkPipeConfig pipe;
  pipe.name = "p";
  pipe.queues.push_back({"a", 0, 3.0});
  pipe.queues.push_back({"b", 0, 1.0});
  sched.add_pipe(pipe);
  sched.set_classifier([](const net::Packet& p) {
    return p.app_id == 0 ? std::string("p/a") : std::string("p/b");
  });
  sched.start();
  std::uint64_t got_a = 0, got_b = 0;
  sched.set_on_delivered([&](const net::Packet& p) {
    (p.app_id == 0 ? got_a : got_b) += p.wire_bytes;
  });
  // Keep both queues topped up.
  sim::PeriodicTimer feeder(sim, sim::microseconds(50), [&] {
    while (sched.queue_backlog("p/a") < 32) sched.submit(packet_for(0));
    while (sched.queue_backlog("p/b") < 32) sched.submit(packet_for(1));
  });
  feeder.start();
  sim.run_until(sim::milliseconds(200));
  ASSERT_GT(got_b, 0u);
  EXPECT_NEAR(static_cast<double>(got_a) / static_cast<double>(got_b), 3.0, 0.5);
}

TEST(DpdkQos, PipeShapingLimitsRate) {
  sim::Simulator sim;
  DpdkQosConfig cfg;
  cfg.port_rate = Rate::gigabits_per_sec(10);
  DpdkQosScheduler sched(sim, cfg);
  DpdkPipeConfig pipe;
  pipe.name = "p";
  pipe.rate = Rate::gigabits_per_sec(2);
  pipe.queues.push_back({"q", 0, 1.0});
  sched.add_pipe(pipe);
  sched.set_classifier([](const net::Packet&) { return "p/q"; });
  sched.start();
  std::uint64_t got = 0;
  sched.set_on_delivered([&](const net::Packet& p) { got += p.wire_bytes; });
  sim::PeriodicTimer feeder(sim, sim::microseconds(50), [&] {
    while (sched.queue_backlog("p/q") < 64) sched.submit(packet_for(0));
  });
  feeder.start();
  sim.run_until(sim::milliseconds(100));
  const double gbps = static_cast<double>(got) * 8.0 / sim::milliseconds(100);
  EXPECT_NEAR(gbps, 2.0, 0.3);
}

TEST(DpdkQos, CpuBudgetCapsPacketRate) {
  sim::Simulator sim;
  DpdkQosConfig cfg;
  cfg.run_cores = 1;
  cfg.port_rate = Rate::gigabits_per_sec(40);
  auto sched = make_dpdk(sim, cfg);
  sched.start();
  std::uint64_t got = 0;
  sched.set_on_delivered([&](const net::Packet&) { ++got; });
  sim::PeriodicTimer feeder(sim, sim::microseconds(20), [&] {
    while (sched.queue_backlog("p0/hi") < 64) sched.submit(packet_for(0, 64));
  });
  feeder.start();
  sim.run_until(sim::milliseconds(50));
  const double mpps = static_cast<double>(got) / sim::to_seconds(sim::milliseconds(50)) / 1e6;
  EXPECT_NEAR(mpps, 2.27, 0.2);  // one core's budget, not the 59 Mpps wire
}

}  // namespace
}  // namespace flowvalve::baseline
