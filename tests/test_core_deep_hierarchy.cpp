// End-to-end semantics on deep scheduling trees (depth 4-5): mixed
// priorities, guarantees at multiple levels, and ceilings on interior
// classes — the "arbitrary hierarchies" flexibility the paper claims over
// fixed traffic managers (§II-B).
#include <gtest/gtest.h>

#include "core/flowvalve.h"

namespace flowvalve::core {
namespace {

using sim::Rate;

/// Interleaved constant-rate driver over several VFs.
struct Driver {
  FlowValveEngine& engine;
  struct Src {
    std::uint16_t vf;
    double gbps;
    double next_ns = 0;
    std::uint64_t fwd = 0;
  };
  std::vector<Src> srcs;
  std::uint32_t bytes = 1000;

  void run(sim::SimDuration horizon, sim::SimTime start = 0) {
    for (auto& s : srcs) s.next_ns = static_cast<double>(start);
    bool done = false;
    while (!done) {
      Src* next = nullptr;
      for (auto& s : srcs)
        if (next == nullptr || s.next_ns < next->next_ns) next = &s;
      if (next->next_ns >= static_cast<double>(start + horizon)) {
        done = true;
        continue;
      }
      net::Packet p;
      p.vf_port = next->vf;
      p.wire_bytes = bytes;
      p.tuple.src_ip = 0x0a000001u + next->vf;
      p.tuple.src_port = static_cast<std::uint16_t>(46000 + next->vf);
      if (engine.process(p, static_cast<sim::SimTime>(next->next_ns)).verdict ==
          Verdict::kForward)
        next->fwd += bytes + net::kEthernetOverheadBytes;
      next->next_ns +=
          static_cast<double>(bytes + net::kEthernetOverheadBytes) * 8.0 / next->gbps;
    }
  }

  double gbps_of(std::uint16_t vf, sim::SimDuration horizon) const {
    for (const auto& s : srcs)
      if (s.vf == vf) return static_cast<double>(s.fwd) * 8.0 / static_cast<double>(horizon);
    return 0.0;
  }
};

TEST(DeepHierarchy, FourLevelWeightedChain) {
  // root(16G) → A(1/2) → B(1/2) → C(1/2): leaf share 2G when every level's
  // sibling is busy.
  FlowValveEngine engine;
  ASSERT_EQ(engine.configure(
                "fv qdisc add dev nic0 root handle 1: htb rate 16gbit\n"
                "fv class add dev nic0 parent 1: classid 1:1 name A weight 1\n"
                "fv class add dev nic0 parent 1: classid 1:2 name A2 weight 1\n"
                "fv class add dev nic0 parent 1:1 classid 1:10 name B weight 1\n"
                "fv class add dev nic0 parent 1:1 classid 1:11 name B2 weight 1\n"
                "fv class add dev nic0 parent 1:10 classid 1:100 name C weight 1\n"
                "fv class add dev nic0 parent 1:10 classid 1:101 name C2 weight 1\n"
                "fv filter add dev nic0 pref 1 vf 0 classid 1:100\n"
                "fv filter add dev nic0 pref 2 vf 1 classid 1:101\n"
                "fv filter add dev nic0 pref 3 vf 2 classid 1:11\n"
                "fv filter add dev nic0 pref 4 vf 3 classid 1:2\n"),
            "");
  Driver d{engine, {{0, 6.0}, {1, 6.0}, {2, 10.0}, {3, 18.0}}};
  d.run(sim::milliseconds(80));
  // Steady shares: A2=8, B2=4, C=2, C2=2.
  EXPECT_NEAR(d.gbps_of(3, sim::milliseconds(80)), 8.0, 0.8);
  EXPECT_NEAR(d.gbps_of(2, sim::milliseconds(80)), 4.0, 0.5);
  EXPECT_NEAR(d.gbps_of(0, sim::milliseconds(80)), 2.0, 0.3);
  EXPECT_NEAR(d.gbps_of(1, sim::milliseconds(80)), 2.0, 0.3);
}

TEST(DeepHierarchy, InteriorCeilCapsSubtree) {
  // The subtree's interior ceiling must bound its leaves even when the
  // weighted share would be larger.
  FlowValveEngine engine;
  ASSERT_EQ(engine.configure(
                "fv qdisc add dev nic0 root handle 1: htb rate 10gbit\n"
                "fv class add dev nic0 parent 1: classid 1:1 name capped weight 3 "
                "ceil 2gbit\n"
                "fv class add dev nic0 parent 1: classid 1:2 name open weight 1\n"
                "fv class add dev nic0 parent 1:1 classid 1:10 name leafA weight 1\n"
                "fv class add dev nic0 parent 1:1 classid 1:11 name leafB weight 1\n"
                // The ceiling strands 'capped's unused weighted share; that
                // slack is only visible in the ROOT's shadow bucket
                // (θ_root − Γ_root), so 'open' borrows from the root.
                "fv borrow add dev nic0 classid 1:2 from 1:\n"
                "fv filter add dev nic0 pref 1 vf 0 classid 1:10\n"
                "fv filter add dev nic0 pref 2 vf 1 classid 1:11\n"
                "fv filter add dev nic0 pref 3 vf 2 classid 1:2\n"),
            "");
  Driver d{engine, {{0, 4.0}, {1, 4.0}, {2, 4.0}}};
  d.run(sim::milliseconds(80));
  const double subtree = d.gbps_of(0, sim::milliseconds(80)) +
                         d.gbps_of(1, sim::milliseconds(80));
  EXPECT_LT(subtree, 2.4);  // interior ceil 2G (+ burst slack)
  // 'open' reaches its full 4G demand: 2.5G weighted share + root slack.
  EXPECT_NEAR(d.gbps_of(2, sim::milliseconds(80)), 4.0, 0.4);
}

TEST(DeepHierarchy, GuaranteesAtTwoLevels) {
  // Guarantee on an interior class (vm-level SLA) and on a leaf inside a
  // *different* subtree must both hold under full contention.
  FlowValveEngine engine;
  ASSERT_EQ(engine.configure(
                "fv qdisc add dev nic0 root handle 1: htb rate 10gbit\n"
                "fv class add dev nic0 parent 1: classid 1:1 name vip prio 1 weight 1 "
                "guarantee 3gbit\n"
                "fv class add dev nic0 parent 1: classid 1:2 name rest prio 0 weight 3\n"
                "fv class add dev nic0 parent 1:2 classid 1:20 name heavy prio 0 weight 1\n"
                "fv class add dev nic0 parent 1:2 classid 1:21 name small prio 1 weight 1 "
                "guarantee 1gbit\n"
                "fv class add dev nic0 parent 1:1 classid 1:10 name vipleaf weight 1\n"
                "fv filter add dev nic0 pref 1 vf 0 classid 1:10\n"
                "fv filter add dev nic0 pref 2 vf 1 classid 1:20\n"
                "fv filter add dev nic0 pref 3 vf 2 classid 1:21\n"),
            "");
  Driver d{engine, {{0, 8.0}, {1, 8.0}, {2, 8.0}}};
  d.run(sim::milliseconds(80));
  // vip's 3G interior guarantee survives 'rest' being higher priority.
  EXPECT_GE(d.gbps_of(0, sim::milliseconds(80)), 2.4);
  // small's 1G leaf guarantee survives 'heavy' being higher priority.
  EXPECT_GE(d.gbps_of(2, sim::milliseconds(80)), 0.8);
  // heavy gets the remainder of rest's share.
  EXPECT_GT(d.gbps_of(1, sim::milliseconds(80)), 4.0);
}

TEST(DeepHierarchy, ThreePriorityLevelsStrictOrder) {
  FlowValveEngine engine;
  ASSERT_EQ(engine.configure(
                "fv qdisc add dev nic0 root handle 1: htb rate 6gbit\n"
                "fv class add dev nic0 parent 1: classid 1:10 name p0 prio 0 weight 1\n"
                "fv class add dev nic0 parent 1: classid 1:11 name p1 prio 1 weight 1\n"
                "fv class add dev nic0 parent 1: classid 1:12 name p2 prio 2 weight 1\n"
                "fv filter add dev nic0 pref 1 vf 0 classid 1:10\n"
                "fv filter add dev nic0 pref 2 vf 1 classid 1:11\n"
                "fv filter add dev nic0 pref 3 vf 2 classid 1:12\n"),
            "");
  Driver d{engine, {{0, 3.0}, {1, 2.0}, {2, 5.0}}};
  d.run(sim::milliseconds(80));
  // p0 and p1 get their demands; p2 is squeezed to the residual ≈1G.
  EXPECT_NEAR(d.gbps_of(0, sim::milliseconds(80)), 3.0, 0.2);
  EXPECT_NEAR(d.gbps_of(1, sim::milliseconds(80)), 2.0, 0.2);
  EXPECT_NEAR(d.gbps_of(2, sim::milliseconds(80)), 1.0, 0.35);
}

TEST(DeepHierarchy, DepthFivePathStillConforms) {
  // A 5-deep chain with a sibling at every level: the leaf's effective share
  // is root/2^4; conformance must hold end to end.
  std::string script = "fv qdisc add dev nic0 root handle 1: htb rate 16gbit\n";
  std::string parent = "1:";
  for (int d = 0; d < 4; ++d) {
    const std::string on = "1:" + std::to_string(100 + d);
    const std::string off = "1:" + std::to_string(200 + d);
    script += "fv class add dev nic0 parent " + parent + " classid " + on + " name on" +
              std::to_string(d) + " weight 1\n";
    script += "fv class add dev nic0 parent " + parent + " classid " + off + " name off" +
              std::to_string(d) + " weight 1\n";
    script += "fv filter add dev nic0 pref " + std::to_string(50 + d) + " vf " +
              std::to_string(10 + d) + " classid " + off + "\n";
    parent = on;
  }
  script += "fv class add dev nic0 parent " + parent +
            " classid 1:999 name leaf weight 1\n";
  script += "fv filter add dev nic0 pref 1 vf 0 classid 1:999\n";

  FlowValveEngine engine;
  ASSERT_EQ(engine.configure(script), "");
  // Keep every "off" sibling busy so no borrowing/residual kicks in.
  Driver d{engine, {{0, 4.0}, {10, 16.0}, {11, 16.0}, {12, 16.0}, {13, 16.0}}};
  d.run(sim::milliseconds(80));
  EXPECT_NEAR(d.gbps_of(0, sim::milliseconds(80)), 1.0, 0.2);  // 16/2^4
}

}  // namespace
}  // namespace flowvalve::core
