// Unit tests for the discrete-event kernel: ordering, cancellation, the
// run_until horizon contract, and periodic timers.
#include <gtest/gtest.h>

#include <vector>

#include "sim/sim_lock.h"
#include "sim/simulator.h"

namespace flowvalve::sim {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SameInstantRunsInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sim.schedule_at(100, [&order, i] { order.push_back(i); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, NowAdvancesWithEvents) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule_at(500, [&] { seen = sim.now(); });
  sim.run_all();
  EXPECT_EQ(seen, 500);
  EXPECT_EQ(sim.now(), 500);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  std::vector<SimTime> at;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { at.push_back(sim.now()); });
  });
  sim.run_all();
  ASSERT_EQ(at.size(), 1u);
  EXPECT_EQ(at[0], 150);
}

TEST(Simulator, RunUntilStopsAtHorizonAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(100, [&] { ++fired; });
  sim.schedule_at(300, [&] { ++fired; });
  sim.run_until(200);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 200);  // clock advances to horizon
  sim.run_until(400);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilIncludesEventsExactlyAtHorizon) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(200, [&] { fired = true; });
  sim.run_until(200);
  EXPECT_TRUE(fired);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run_all();
  EXPECT_FALSE(fired);
}

TEST(Simulator, HandleNotPendingAfterFire) {
  Simulator sim;
  EventHandle h = sim.schedule_at(10, [] {});
  sim.run_all();
  EXPECT_FALSE(h.pending());
  h.cancel();  // harmless
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) sim.schedule_after(10, chain);
  };
  sim.schedule_at(0, chain);
  sim.run_all();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sim.now(), 990);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  sim.run_all();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(Simulator, StepExecutesOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1, [&] { ++fired; });
  sim.schedule_at(2, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(PeriodicTimer, FiresAtPeriod) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer(sim, 100, [&] { ++fires; });
  timer.start();
  sim.run_until(1000);
  EXPECT_EQ(fires, 10);
}

TEST(PeriodicTimer, StopHalts) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer(sim, 100, [&] { ++fires; });
  timer.start();
  sim.schedule_at(350, [&] { timer.stop(); });
  sim.run_until(1000);
  EXPECT_EQ(fires, 3);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, RestartableAfterStop) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer(sim, 100, [&] { ++fires; });
  timer.start();
  sim.schedule_at(250, [&] { timer.stop(); });
  sim.schedule_at(500, [&] { timer.start(); });
  sim.run_until(1000);
  EXPECT_EQ(fires, 2 + 5);
}

TEST(EventHandle, CancelAfterFireIsNoOp) {
  Simulator sim;
  int fired = 0;
  EventHandle h = sim.schedule_at(10, [&] { ++fired; });
  sim.run_until(20);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not throw, must not affect anything
  h.cancel();  // idempotent
  EXPECT_FALSE(h.pending());
  sim.run_all();
  EXPECT_EQ(fired, 1);
}

TEST(EventHandle, CancelBeforeFireSuppressesAndClearsPending) {
  Simulator sim;
  int fired = 0;
  EventHandle h = sim.schedule_at(10, [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run_all();
  EXPECT_EQ(fired, 0);
  // The cancelled event still drains from the heap as a no-op.
  EXPECT_TRUE(sim.empty());
}

TEST(EventHandle, DefaultConstructedIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op
}

TEST(PeriodicTimer, StopThenStartReArms) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer(sim, 100, [&] { ++fires; });
  timer.start();
  sim.run_until(250);
  EXPECT_EQ(fires, 2);
  timer.stop();
  timer.stop();  // idempotent
  EXPECT_FALSE(timer.running());
  timer.start();
  EXPECT_TRUE(timer.running());
  sim.run_until(600);  // re-armed from t=250 → fires at 350, 450, 550
  EXPECT_EQ(fires, 5);
}

TEST(PeriodicTimer, StartWhileRunningIsNoOp) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer(sim, 100, [&] { ++fires; });
  timer.start();
  timer.start();  // must not double-arm
  sim.run_until(1000);
  EXPECT_EQ(fires, 10);
}

TEST(PeriodicTimer, DestructorCancelsPendingEvent) {
  Simulator sim;
  int fires = 0;
  {
    PeriodicTimer timer(sim, 100, [&] { ++fires; });
    timer.start();
    sim.run_until(150);
    EXPECT_EQ(fires, 1);
    // timer destroyed here with its next event (t=200) still pending
  }
  sim.run_all();  // the orphaned event must be a cancelled no-op, not UAF
  EXPECT_EQ(fires, 1);
  EXPECT_TRUE(sim.empty());
}

// ---- schedule_periodic (both backends) -----------------------------------

TEST(SchedulePeriodic, FiresEveryPeriodUntilCancelled) {
  for (SchedulerKind kind : {SchedulerKind::kHeap, SchedulerKind::kWheel}) {
    Simulator sim(kind);
    std::vector<SimTime> at;
    EventHandle h = sim.schedule_periodic(100, [&] { at.push_back(sim.now()); });
    sim.run_until(550);
    EXPECT_EQ(at, (std::vector<SimTime>{100, 200, 300, 400, 500}));
    EXPECT_TRUE(h.pending());  // stays pending across firings
    h.cancel();
    EXPECT_FALSE(h.pending());
    sim.run_all();
    EXPECT_EQ(at.size(), 5u);
    EXPECT_TRUE(sim.empty());
  }
}

TEST(SchedulePeriodic, CancelFromInsideOwnCallbackStopsCleanly) {
  for (SchedulerKind kind : {SchedulerKind::kHeap, SchedulerKind::kWheel}) {
    Simulator sim(kind);
    int fires = 0;
    EventHandle h;
    h = sim.schedule_periodic(50, [&] {
      if (++fires == 3) h.cancel();
    });
    sim.run_all();
    EXPECT_EQ(fires, 3);
    EXPECT_FALSE(h.pending());
    EXPECT_TRUE(sim.empty());
  }
}

TEST(SchedulePeriodic, InterleavesWithOneShotsDeterministically) {
  for (SchedulerKind kind : {SchedulerKind::kHeap, SchedulerKind::kWheel}) {
    Simulator sim(kind);
    std::vector<int> order;
    EventHandle p = sim.schedule_periodic(100, [&] { order.push_back(0); });
    sim.schedule_at(100, [&] { order.push_back(1); });  // same instant as tick 1:
    sim.schedule_at(150, [&] { order.push_back(2); });  // periodic was armed first
    sim.run_until(250);
    p.cancel();
    sim.run_all();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 0}));
  }
}

// ---- explicit legacy-heap backend coverage --------------------------------
// The wheel is the default everywhere, so pin the reference implementation's
// core contracts directly too (it backs all differential tests).

TEST(HeapBackend, OrderingCancelAndHorizonContracts) {
  Simulator sim(SchedulerKind::kHeap);
  EXPECT_EQ(sim.scheduler_kind(), SchedulerKind::kHeap);
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  EventHandle dead = sim.schedule_at(20, [&] { order.push_back(99); });
  for (int i = 0; i < 3; ++i) sim.schedule_at(40, [&order, i] { order.push_back(40 + i); });
  dead.cancel();
  EXPECT_EQ(sim.run_until(35), 2u);  // cancelled event neither fires nor counts
  EXPECT_EQ(sim.now(), 35);
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 40, 41, 42}));
  EXPECT_EQ(sim.events_executed(), 5u);
  EXPECT_TRUE(sim.empty());
}

TEST(HeapBackend, NestedSchedulingFromCallbacks) {
  Simulator sim(SchedulerKind::kHeap);
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 50) sim.schedule_after(10, chain);
  };
  sim.schedule_at(0, chain);
  sim.run_all();
  EXPECT_EQ(count, 50);
  EXPECT_EQ(sim.now(), 490);
}

TEST(SimTryLock, FailsWhileBusy) {
  SimTryLock lock;
  EXPECT_TRUE(lock.try_acquire(100, 50));
  EXPECT_TRUE(lock.is_busy(120));
  EXPECT_FALSE(lock.try_acquire(120, 50));
  EXPECT_TRUE(lock.try_acquire(150, 50));  // freed exactly at 150
  EXPECT_EQ(lock.stats().acquisitions, 2u);
  EXPECT_EQ(lock.stats().try_failures, 1u);
}

TEST(SimBlockingLock, SerializesAndReportsWait) {
  SimBlockingLock lock;
  EXPECT_EQ(lock.acquire(100, 50), 0);   // free → no wait
  EXPECT_EQ(lock.acquire(120, 50), 30);  // busy until 150 → waits 30
  EXPECT_EQ(lock.busy_until(), 200);
  EXPECT_EQ(lock.acquire(300, 50), 0);
  EXPECT_EQ(lock.stats().total_wait, 30);
  EXPECT_EQ(lock.stats().total_hold, 150);
}

}  // namespace
}  // namespace flowvalve::sim
