// Unit + property tests for the Eiffel-style FFS bucket queue.
#include <gtest/gtest.h>

#include <map>
#include <queue>

#include "baseline/bucket_queue.h"
#include "sim/rng.h"

namespace flowvalve::baseline {
namespace {

TEST(BucketQueueTest, EmptyBehaviour) {
  BucketQueue<int> q(128);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.min_rank().has_value());
  EXPECT_FALSE(q.pop_min().has_value());
  EXPECT_FALSE(q.pop_max().has_value());
}

TEST(BucketQueueTest, PopsInRankOrder) {
  BucketQueue<int> q(256);
  q.push(200, 1);
  q.push(3, 2);
  q.push(77, 3);
  EXPECT_EQ(q.min_rank(), 3u);
  EXPECT_EQ(q.pop_min(), 2);
  EXPECT_EQ(q.pop_min(), 3);
  EXPECT_EQ(q.pop_min(), 1);
  EXPECT_TRUE(q.empty());
}

TEST(BucketQueueTest, FifoWithinBucket) {
  BucketQueue<int> q(64);
  q.push(5, 10);
  q.push(5, 11);
  q.push(5, 12);
  EXPECT_EQ(q.pop_min(), 10);
  EXPECT_EQ(q.pop_min(), 11);
  EXPECT_EQ(q.pop_min(), 12);
}

TEST(BucketQueueTest, PopMaxTakesWorstRank) {
  BucketQueue<int> q(4096);
  q.push(10, 1);
  q.push(4000, 2);
  q.push(500, 3);
  EXPECT_EQ(q.pop_max(), 2);
  EXPECT_EQ(q.pop_max(), 3);
  EXPECT_EQ(q.pop_max(), 1);
}

TEST(BucketQueueTest, OverflowRanksSaturate) {
  BucketQueue<int> q(64);
  q.push(1'000'000, 7);
  EXPECT_EQ(q.min_rank(), 63u);
  EXPECT_EQ(q.pop_min(), 7);
}

TEST(BucketQueueTest, RoundsBucketsToWordMultiple) {
  BucketQueue<int> q(100);
  EXPECT_EQ(q.num_buckets(), 128u);
}

// Regression: a request beyond the two-level bitmap's 4096-bucket ceiling
// used to be accepted verbatim, making push() execute `1ull << w` with
// w ≥ 64 (undefined behavior) for high ranks. The constructor now clamps.
TEST(BucketQueueTest, ClampsToBitmapCeiling) {
  BucketQueue<int> q(1'000'000);
  EXPECT_EQ(q.num_buckets(), BucketQueue<int>::kMaxBuckets);
  EXPECT_EQ(q.num_buckets(), 4096u);
  // A huge rank saturates into the (clamped) last bucket instead of
  // indexing past the bitmap.
  q.push(1'000'000, 7);
  q.push(0, 8);
  EXPECT_EQ(q.min_rank(), 0u);
  EXPECT_EQ(q.pop_max(), 7);
  EXPECT_EQ(q.pop_min(), 8);
  EXPECT_TRUE(q.empty());
}

TEST(BucketQueueTest, ZeroBucketsClampsUpToOneWord) {
  BucketQueue<int> q(0);
  EXPECT_EQ(q.num_buckets(), BucketQueue<int>::kWordBits);
  q.push(999, 1);  // saturates into bucket 63 rather than underflowing
  EXPECT_EQ(q.min_rank(), 63u);
  EXPECT_EQ(q.pop_min(), 1);
}

TEST(BucketQueueTest, PopMaxOnSingleElementBucket) {
  BucketQueue<int> q(256);
  q.push(200, 1);
  EXPECT_EQ(q.pop_max(), 1);  // sole entry: max == min
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.min_rank().has_value());
  // The bitmap must be fully cleared: a fresh push lands clean.
  q.push(3, 2);
  EXPECT_EQ(q.min_rank(), 3u);
  EXPECT_EQ(q.pop_max(), 2);
}

TEST(BucketQueueTest, ClearResets) {
  BucketQueue<int> q(64);
  q.push(1, 1);
  q.push(2, 2);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.min_rank().has_value());
}

TEST(BucketQueueTest, ClearThenReuseBehavesFresh) {
  BucketQueue<int> q(128);
  for (std::size_t r = 0; r < 128; ++r) q.push(r, static_cast<int>(r));
  q.clear();
  EXPECT_FALSE(q.pop_min().has_value());
  EXPECT_FALSE(q.pop_max().has_value());
  q.push(64, 1);  // second word of the bitmap
  q.push(5, 2);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop_min(), 2);
  EXPECT_EQ(q.pop_min(), 1);
  EXPECT_TRUE(q.empty());
}

TEST(BucketQueueTest, WordBoundaryRanks) {
  BucketQueue<int> q(256);
  // Exercise ranks at 64-bit word edges.
  for (std::size_t r : {0u, 63u, 64u, 127u, 128u, 255u}) q.push(r, static_cast<int>(r));
  int prev = -1;
  while (auto v = q.pop_min()) {
    EXPECT_GT(*v, prev);
    prev = *v;
  }
  EXPECT_EQ(prev, 255);
}

// Property: behaves identically to a reference multimap across random
// push/pop_min/pop_max sequences.
class BucketQueueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BucketQueueFuzz, MatchesReferenceModel) {
  sim::Rng rng(GetParam() * 2654435761ull);
  BucketQueue<int> q(1024);
  std::multimap<std::size_t, int> ref;
  int next_val = 0;
  for (int step = 0; step < 20000; ++step) {
    const auto op = rng.next_below(3);
    if (op == 0 || ref.empty()) {
      const auto rank = static_cast<std::size_t>(rng.next_below(1024));
      q.push(rank, next_val);
      ref.emplace(rank, next_val);
      ++next_val;
    } else if (op == 1) {
      const auto got = q.pop_min();
      ASSERT_TRUE(got.has_value());
      auto it = ref.begin();
      EXPECT_EQ(it->first, *q.min_rank() <= it->first ? it->first : it->first);
      EXPECT_EQ(*got, it->second);  // FIFO within rank matches multimap order
      ref.erase(it);
    } else {
      const auto got = q.pop_max();
      ASSERT_TRUE(got.has_value());
      auto it = std::prev(ref.end());
      // pop_max takes LIFO within the max bucket; find the last-inserted
      // entry of that rank in the reference (multimap preserves insertion
      // order within a key).
      auto range = ref.equal_range(it->first);
      auto last = range.first;
      for (auto i = range.first; i != range.second; ++i) last = i;
      EXPECT_EQ(*got, last->second);
      ref.erase(last);
    }
    ASSERT_EQ(q.size(), ref.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BucketQueueFuzz, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace flowvalve::baseline
