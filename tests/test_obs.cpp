// Tier-1 coverage for src/obs: histogram bucketing/percentiles, the JSON
// emitter, the latency decomposition against hand-computable pipeline
// timings, windowed throughput accounting, and the MetricsHub counter
// snapshot (utilization bound, reorder occupancy passthrough).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "np/nic_pipeline.h"
#include "obs/export.h"
#include "obs/histogram.h"
#include "obs/json_writer.h"
#include "obs/metrics_hub.h"
#include "sim/simulator.h"

namespace flowvalve::obs {
namespace {

// ---- LogHistogram --------------------------------------------------------

TEST(LogHistogram, SmallValuesAreExact) {
  LogHistogram h;
  for (std::uint64_t v = 0; v < 16; ++v) h.record(v);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 15u);
  for (std::uint64_t v = 0; v < 16; ++v)
    EXPECT_EQ(LogHistogram::bucket_mid(LogHistogram::bucket_index(v)), v);
}

TEST(LogHistogram, BucketRelativeErrorBounded) {
  // Any value's representative must be within 1/16 (one sub-bucket) of it.
  for (std::uint64_t v : {17ull, 100ull, 1000ull, 123456ull, 9999999ull,
                          123456789012ull}) {
    const std::uint64_t mid = LogHistogram::bucket_mid(LogHistogram::bucket_index(v));
    const double rel = std::abs(double(mid) - double(v)) / double(v);
    EXPECT_LE(rel, 1.0 / 16.0) << v;
  }
}

TEST(LogHistogram, BucketIndexIsMonotone) {
  std::size_t prev = 0;
  for (std::uint64_t v = 1; v < 1 << 20; v = v * 2 + 1) {
    const std::size_t idx = LogHistogram::bucket_index(v);
    EXPECT_GE(idx, prev) << v;
    prev = idx;
  }
}

TEST(LogHistogram, PercentilesOnUniformRamp) {
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_NEAR(double(h.p50()), 5000.0, 5000.0 / 16.0);
  EXPECT_NEAR(double(h.p90()), 9000.0, 9000.0 / 16.0);
  EXPECT_NEAR(double(h.p99()), 9900.0, 9900.0 / 16.0);
  EXPECT_NEAR(double(h.p999()), 9990.0, 9990.0 / 16.0);
  EXPECT_NEAR(h.mean(), 5000.5, 0.001);
  EXPECT_EQ(h.percentile(0.0), 1u);
  EXPECT_EQ(h.percentile(100.0), 10000u);
}

TEST(LogHistogram, MergeAndReset) {
  LogHistogram a, b;
  a.record(10);
  a.record(100);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.percentile(50), 0u);
}

// ---- JsonWriter ----------------------------------------------------------

TEST(JsonWriter, EmitsValidStructure) {
  JsonWriter w;
  w.begin_object()
      .key("name").value("fv")
      .key("n").value(std::uint64_t{42})
      .key("x").value(1.5)
      .key("ok").value(true)
      .key("list").begin_array().value(1).value(2).end_array()
      .key("nested").begin_object().key("a").value("b\"c").end_object()
      .end_object();
  EXPECT_EQ(w.str(),
            R"({"name":"fv","n":42,"x":1.5,"ok":true,"list":[1,2],)"
            R"("nested":{"a":"b\"c"}})");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array().value(0.0 / 0.0).value(1e308 * 10).end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

// ---- Pipeline-attached pieces --------------------------------------------

/// Fixed-cost forwarding processor (deterministic service time).
class FixedCost final : public np::PacketProcessor {
 public:
  explicit FixedCost(std::uint32_t cycles) : cycles_(cycles) {}
  Outcome process(net::Packet&, sim::SimTime) override { return {true, cycles_}; }

 private:
  std::uint32_t cycles_;
};

net::Packet packet_on(std::uint16_t vf, std::uint64_t id,
                      std::uint32_t bytes = 1000) {
  net::Packet p;
  p.id = id;
  p.vf_port = vf;
  p.flow_id = vf;
  p.wire_bytes = bytes;
  return p;
}

np::NpConfig small_config() {
  np::NpConfig cfg;
  cfg.num_workers = 1;
  cfg.num_vfs = 2;
  cfg.wire_rate = sim::Rate::gigabits_per_sec(10);
  cfg.fixed_pipeline_delay = sim::microseconds(3);
  return cfg;
}

TEST(LatencyRecorder, DecomposesSojournIntoSegments) {
  // One worker, one packet: every segment is hand-computable.
  sim::Simulator sim;
  np::NpConfig cfg = small_config();
  FixedCost proc(1000);
  np::NicPipeline pipe(sim, cfg, proc);
  MetricsHub hub(sim, pipe);
  hub.start();

  pipe.submit(packet_on(0, 1));
  hub.stop_sampling();  // the sampling timer would re-arm forever
  sim.run_all();

  const LatencyRecorder& lat = hub.latency();
  EXPECT_EQ(lat.recorded(), 1u);
  EXPECT_EQ(lat.pending(), 0u);
  const auto busy_ns = static_cast<std::uint64_t>(
      cfg.cycles_to_ns(cfg.base_rx_cycles + 1000 + cfg.base_tx_cycles));
  EXPECT_EQ(lat.segment(Segment::kVfWait).max(), 0u);      // idle worker
  EXPECT_EQ(lat.segment(Segment::kService).max(), busy_ns);
  EXPECT_EQ(lat.segment(Segment::kReorderHold).max(), 0u); // in-order
  // tx_wait = own serialization at 10G (1020 wire bytes → 816 ns).
  const auto ser = static_cast<std::uint64_t>(
      cfg.wire_rate.serialization_delay(1000 + net::kEthernetOverheadBytes));
  EXPECT_EQ(lat.segment(Segment::kTxWait).max(), ser);
  EXPECT_EQ(lat.segment(Segment::kWireFixed).max(),
            static_cast<std::uint64_t>(cfg.fixed_pipeline_delay));
  EXPECT_EQ(lat.segment(Segment::kTotal).max(), busy_ns + ser +
            static_cast<std::uint64_t>(cfg.fixed_pipeline_delay));
  // Per-class total keyed by VF.
  ASSERT_EQ(lat.per_class_total().count(0), 1u);
  EXPECT_EQ(lat.per_class_total().at(0).count(), 1u);
}

TEST(LatencyRecorder, SegmentsSumToTotal) {
  // With 2 workers and jittered arrivals every segment is exercised; for
  // every delivery the five parts must add up to the whole (identically —
  // all segments are integer ns cut from the same timeline).
  sim::Simulator sim;
  np::NpConfig cfg = small_config();
  cfg.num_workers = 2;
  FixedCost proc(4000);
  np::NicPipeline pipe(sim, cfg, proc);
  MetricsHub hub(sim, pipe);
  hub.start();

  for (std::uint64_t i = 0; i < 200; ++i) {
    const auto at = static_cast<sim::SimTime>(i * 137);
    sim.schedule_at(at, [&pipe, i] {
      pipe.submit(packet_on(static_cast<std::uint16_t>(i % 2), i));
    });
  }
  hub.stop_sampling();
  sim.run_all();

  const LatencyRecorder& lat = hub.latency();
  EXPECT_EQ(lat.recorded(), 200u);
  EXPECT_EQ(lat.pending(), 0u);
  double parts = 0.0;
  for (Segment s : {Segment::kVfWait, Segment::kService, Segment::kReorderHold,
                    Segment::kTxWait, Segment::kWireFixed})
    parts += lat.segment(s).sum();
  EXPECT_DOUBLE_EQ(parts, lat.segment(Segment::kTotal).sum());
}

TEST(LatencyRecorder, DropsDiscardPendingState) {
  sim::Simulator sim;
  np::NpConfig cfg = small_config();
  cfg.tx_ring_capacity = 1;
  cfg.wire_rate = sim::Rate::gigabits_per_sec(1);  // slow drain → Tx overflow
  FixedCost proc(100);
  np::NicPipeline pipe(sim, cfg, proc);
  MetricsHub hub(sim, pipe);
  hub.start();

  for (std::uint64_t i = 0; i < 50; ++i) pipe.submit(packet_on(0, i, 1500));
  hub.stop_sampling();
  sim.run_all();

  EXPECT_GT(pipe.stats().tx_ring_drops, 0u);
  EXPECT_EQ(hub.latency().pending(), 0u);
  EXPECT_EQ(hub.latency().recorded(), pipe.stats().forwarded_to_wire);
}

TEST(LatencyRecorder, PendingShrinksOnDropsMidRun) {
  // pending_ is bounded by live in-flight packets, not by history: every
  // drop notification must ERASE its entry. Sample pending() throughout a
  // run that tail-drops most of a burst — it must rise, stay within the
  // pipeline's physical in-flight bound, and fall back to zero, instead of
  // accumulating one leaked entry per dropped packet.
  sim::Simulator sim;
  np::NpConfig cfg = small_config();
  cfg.tx_ring_capacity = 1;
  cfg.wire_rate = sim::Rate::gigabits_per_sec(1);  // slow drain → Tx overflow
  // A worker burst legitimately holds batch_size pending entries; keep the
  // burst small so the ≤10 peak bound still discriminates a leak (~40+
  // entries) from physical in-flight occupancy. Batch-32 pending behavior
  // is pinned in test_np_batch_diff.cpp.
  cfg.batch_size = 2;
  FixedCost proc(100);
  np::NicPipeline pipe(sim, cfg, proc);
  MetricsHub hub(sim, pipe);
  hub.start();

  std::vector<std::size_t> samples;
  sim::EventHandle probe = sim.schedule_periodic(
      sim::microseconds(5), [&] { samples.push_back(hub.latency().pending()); });

  for (std::uint64_t i = 0; i < 50; ++i) pipe.submit(packet_on(0, i, 1500));
  sim.run_until(sim::milliseconds(2));
  probe.cancel();
  hub.stop_sampling();
  sim.run_all();

  ASSERT_GT(pipe.stats().tx_ring_drops, 20u);  // the scenario really tail-drops
  const std::size_t peak = *std::max_element(samples.begin(), samples.end());
  EXPECT_GE(peak, 1u);   // entries appear at dispatch...
  EXPECT_LE(peak, 10u);  // ...but dropped ones are erased, so the set stays
                         // near the worker+ring in-flight count, nowhere near
                         // the ~40+ dropped packets
  EXPECT_EQ(hub.latency().pending(), 0u);  // and drains fully by quiescence
  EXPECT_EQ(hub.latency().recorded(), pipe.stats().forwarded_to_wire);
}

TEST(ThroughputTracker, WindowsAndTotalsPerClass) {
  sim::Simulator sim;
  np::NpConfig cfg = small_config();
  FixedCost proc(100);
  np::NicPipeline pipe(sim, cfg, proc);
  MetricsHub hub(sim, pipe, {.window = sim::microseconds(100)});
  hub.start();

  // 10 packets on VF 0, 5 on VF 1, all in the first 100 us window.
  for (std::uint64_t i = 0; i < 15; ++i) {
    const auto at = static_cast<sim::SimTime>(i * 1500);
    sim.schedule_at(at, [&pipe, i] {
      pipe.submit(packet_on(i < 10 ? 0 : 1, i));
    });
  }
  sim.run_until(sim::microseconds(450));
  hub.stop_sampling();
  sim.run_all();

  const auto totals = hub.throughput().totals();
  ASSERT_EQ(totals.count(0), 1u);
  ASSERT_EQ(totals.count(1), 1u);
  EXPECT_EQ(totals.at(0).tx_packets, 10u);
  EXPECT_EQ(totals.at(0).tx_bytes, 10u * 1000u);
  EXPECT_EQ(totals.at(1).tx_packets, 5u);
  EXPECT_EQ(totals.at(0).drops, 0u);

  const auto& wins = hub.throughput().windows();
  ASSERT_GE(wins.size(), 4u);  // 4 full windows + the final partial
  EXPECT_EQ(wins[0].end - wins[0].start, sim::microseconds(100));
  // All traffic landed in the first window; later ones are empty but exist.
  EXPECT_EQ(wins[0].classes.at(0).tx_packets, 10u);
  EXPECT_GT(wins[0].rate(0).gbps(), 0.0);
  EXPECT_TRUE(wins[2].classes.empty());
  // Window totals reconcile with the run totals.
  std::uint64_t windowed = 0;
  for (const auto& w : wins)
    for (const auto& [vf, c] : w.classes) windowed += c.tx_packets;
  EXPECT_EQ(windowed, 15u);
}

TEST(MetricsHub, SnapshotFoldsCountersAndBounds) {
  sim::Simulator sim;
  np::NpConfig cfg = small_config();
  FixedCost proc(2000);
  np::NicPipeline pipe(sim, cfg, proc);
  MetricsHub hub(sim, pipe);
  hub.start();

  for (std::uint64_t i = 0; i < 100; ++i) pipe.submit(packet_on(0, i));
  sim.run_until(sim::microseconds(50));  // mid-run: workers still busy
  const CounterSnapshot mid = hub.snapshot();
  EXPECT_GE(mid.worker_utilization, 0.0);
  EXPECT_LE(mid.worker_utilization, 1.0);
  hub.stop_sampling();
  sim.run_all();

  const CounterSnapshot s = hub.snapshot();
  EXPECT_EQ(s.nic.submitted, 100u);
  EXPECT_FALSE(s.have_sched);  // no engine attached
  EXPECT_LE(s.worker_utilization, 1.0);
  EXPECT_EQ(s.reorder_occupancy, 0u);
  EXPECT_EQ(s.in_flight, 0u);
}

TEST(MetricsHub, JsonExportCarriesAllSections) {
  sim::Simulator sim;
  np::NpConfig cfg = small_config();
  FixedCost proc(500);
  np::NicPipeline pipe(sim, cfg, proc);
  MetricsHub hub(sim, pipe, {.window = sim::microseconds(50)});
  hub.start();
  for (std::uint64_t i = 0; i < 20; ++i) pipe.submit(packet_on(0, i));
  sim.run_until(sim::microseconds(200));
  hub.stop_sampling();
  sim.run_all();

  const std::string json = metrics_to_json(hub);
  for (const char* needle :
       {"\"counters\"", "\"latency\"", "\"throughput\"", "\"vf_wait\"",
        "\"service\"", "\"reorder_hold\"", "\"tx_wait\"", "\"wire_fixed\"",
        "\"total\"", "\"p99_ns\"", "\"worker_utilization\"",
        "\"reorder_occupancy\"", "\"windows\"", "\"totals\""})
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  // Balanced braces/brackets — cheap structural sanity without a parser.
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace flowvalve::obs
