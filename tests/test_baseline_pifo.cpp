// Unit tests for the PIFO/STFQ comparator (the Loom-style primitive).
#include <gtest/gtest.h>

#include "baseline/pifo.h"
#include "sim/simulator.h"

namespace flowvalve::baseline {
namespace {

using sim::Rate;

net::Packet packet_for(std::uint32_t app, std::uint32_t bytes = 1518,
                       std::uint64_t id = 0) {
  net::Packet p;
  p.id = id;
  p.app_id = app;
  p.wire_bytes = bytes;
  return p;
}

PifoScheduler make_pifo(sim::Simulator& sim, double w0, double w1,
                        Rate rate = Rate::gigabits_per_sec(1)) {
  PifoConfig cfg;
  cfg.port_rate = rate;
  PifoScheduler pifo(sim, cfg);
  pifo.add_class("a", w0);
  pifo.add_class("b", w1);
  pifo.set_classifier(
      [](const net::Packet& p) { return static_cast<int>(p.app_id % 2); });
  return pifo;
}

TEST(PifoTest, FifoWithinAClass) {
  sim::Simulator sim;
  PifoScheduler pifo = make_pifo(sim, 1, 1);
  std::vector<std::uint64_t> order;
  pifo.set_on_delivered([&](const net::Packet& p) { order.push_back(p.id); });
  for (std::uint64_t i = 0; i < 10; ++i) pifo.submit(packet_for(0, 1518, i));
  sim.run_until(sim::seconds(1));
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  EXPECT_EQ(order.size(), 10u);
}

TEST(PifoTest, WeightedSharesUnderBacklog) {
  sim::Simulator sim;
  PifoScheduler pifo = make_pifo(sim, 3, 1);
  // Keep both classes backlogged via a feeder.
  sim::PeriodicTimer feeder(sim, sim::microseconds(100), [&] {
    while (pifo.class_backlog(0) < 32) pifo.submit(packet_for(0));
    while (pifo.class_backlog(1) < 32) pifo.submit(packet_for(1));
  });
  feeder.start();
  sim.run_until(sim::milliseconds(400));
  const double ratio = static_cast<double>(pifo.class_bytes(0)) /
                       static_cast<double>(pifo.class_bytes(1));
  EXPECT_NEAR(ratio, 3.0, 0.3);
}

TEST(PifoTest, WorkConservingWhenOneClassIdle) {
  sim::Simulator sim;
  PifoScheduler pifo = make_pifo(sim, 3, 1);
  sim::PeriodicTimer feeder(sim, sim::microseconds(100), [&] {
    while (pifo.backlog() < 64) pifo.submit(packet_for(1));  // only class b
  });
  feeder.start();
  sim.run_until(sim::milliseconds(200));
  // Class b uses the whole port despite weight 1.
  const double gbps =
      static_cast<double>(pifo.class_bytes(1)) * 8.0 / sim::milliseconds(200);
  EXPECT_NEAR(gbps, 1.0, 0.05);
}

TEST(PifoTest, LateHighWeightPacketJumpsQueue) {
  sim::Simulator sim;
  // Slow port so the heap holds everything we enqueue in one instant.
  PifoScheduler pifo = make_pifo(sim, 100, 1, Rate::megabits_per_sec(10));
  std::vector<std::uint32_t> order;
  pifo.set_on_delivered([&](const net::Packet& p) { order.push_back(p.app_id); });
  // Fill with low-weight class-1 packets, then push one class-0 packet:
  // its STFQ start tag (≈ current virtual time) ranks ahead of most of the
  // queued tail.
  for (int i = 0; i < 10; ++i) pifo.submit(packet_for(1));
  pifo.submit(packet_for(0));
  sim.run_until(sim::seconds(3));
  ASSERT_EQ(order.size(), 11u);
  // The class-0 packet is not served last (it push-in jumped the tail).
  const auto pos = std::find(order.begin(), order.end(), 0u) - order.begin();
  EXPECT_LT(pos, 5);
}

TEST(PifoTest, CapacityTailDrop) {
  sim::Simulator sim;
  PifoConfig cfg;
  cfg.capacity = 8;
  cfg.port_rate = Rate::megabits_per_sec(1);
  PifoScheduler pifo(sim, cfg);
  pifo.add_class("a", 1);
  pifo.set_classifier([](const net::Packet&) { return 0; });
  int drops = 0;
  pifo.set_on_dropped([&](const net::Packet&) { ++drops; });
  for (int i = 0; i < 20; ++i) pifo.submit(packet_for(0));
  EXPECT_GT(drops, 0);
  EXPECT_EQ(pifo.stats().dropped, static_cast<std::uint64_t>(drops));
}

// Push-out audit under rank ties: the full-heap eviction rolls the victim
// class's finish tag back to the evicted rank, which is only sound if the
// global worst entry is that class's MOST RECENT enqueue — including when
// two classes' worst ranks tie and (rank, seq) ordering breaks the tie.
// The debug assertions in submit() verify the invariant on every eviction;
// this test drives a deterministic tie-then-evict sequence through them
// and checks both victim selection and the rollback's visible effect.
TEST(PifoTest, PushOutUnderRankTiesEvictsLatestAndRollsBack) {
  sim::Simulator sim;
  PifoConfig cfg;
  cfg.capacity = 3;
  cfg.port_rate = Rate::megabits_per_sec(10);  // slow: heap fills at t=0
  PifoScheduler pifo(sim, cfg);
  pifo.add_class("a", 1);
  pifo.add_class("b", 1);
  pifo.add_class("c", 1);
  pifo.set_classifier(
      [](const net::Packet& p) { return static_cast<int>(p.app_id); });
  std::vector<std::uint64_t> dropped_ids;
  pifo.set_on_dropped(
      [&](const net::Packet& p) { dropped_ids.push_back(p.id); });
  std::vector<std::uint32_t> delivered_apps;
  pifo.set_on_delivered(
      [&](const net::Packet& p) { delivered_apps.push_back(p.app_id); });

  // t=0, equal weights, equal sizes → start tags: a1=0 (goes straight to
  // the wire), a2=1518, b1=0, b2=1518. Heap is now full at capacity 3 with
  // a2 and b2 TIED on rank 1518; (rank, seq) makes b2 — class b's most
  // recent enqueue — the strict maximum.
  EXPECT_TRUE(pifo.submit(packet_for(0, 1518, /*id=*/1)));  // a1
  EXPECT_TRUE(pifo.submit(packet_for(0, 1518, /*id=*/2)));  // a2
  EXPECT_TRUE(pifo.submit(packet_for(1, 1518, /*id=*/3)));  // b1
  EXPECT_TRUE(pifo.submit(packet_for(1, 1518, /*id=*/4)));  // b2
  // A fresh class ranks at start 0 < 1518: push-out must evict b2 (id 4),
  // not the tied a2 (id 2) and not the earlier b1 (id 3), and must roll
  // b's finish tag back from 3036 to 1518.
  EXPECT_TRUE(pifo.submit(packet_for(2, 1518, /*id=*/5)));  // c1
  ASSERT_EQ(dropped_ids, (std::vector<std::uint64_t>{4}));
  EXPECT_EQ(pifo.stats().pushed_out, 1u);

  // Drain everything (a1, b1, c1, a2), then probe the rollback: after the
  // queue empties, virtual time sits at 1518. Class b's next start tag is
  // the ROLLED-BACK 1518 — tying class c's — so b, submitted after c,
  // still transmits first only because its seq is smaller at equal rank.
  // Without the rollback b would restart at 3036 and lose to c.
  sim.schedule_at(sim::milliseconds(20), [&] {
    EXPECT_TRUE(pifo.submit(packet_for(0, 1518, /*id=*/6)));  // straight to wire
    EXPECT_TRUE(pifo.submit(packet_for(1, 1518, /*id=*/7)));
    EXPECT_TRUE(pifo.submit(packet_for(2, 1518, /*id=*/8)));
  });
  sim.run_until(sim::milliseconds(40));
  ASSERT_EQ(delivered_apps.size(), 7u);
  const std::vector<std::uint32_t> expect = {0, 1, 2, 0, 0, 1, 2};
  EXPECT_EQ(delivered_apps, expect);
}

TEST(PifoTest, UnmatchedClassifierDrops) {
  sim::Simulator sim;
  PifoScheduler pifo = make_pifo(sim, 1, 1);
  pifo.set_classifier([](const net::Packet&) { return -1; });
  EXPECT_FALSE(pifo.submit(packet_for(0)));
}

}  // namespace
}  // namespace flowvalve::baseline
