// Property-based tests: invariants that must hold across randomized
// scheduling trees, policies, and packet trains (seed-parameterized sweeps).
#include <gtest/gtest.h>

#include <sstream>

#include "core/flowvalve.h"
#include "sim/rng.h"

namespace flowvalve::core {
namespace {

using sim::Rate;

/// Build a random 2-level tree: root at 10G with 2-5 leaves of random
/// weights/prios/guarantees, filters on vf = leaf index, full mutual
/// borrowing. Returns the configured engine.
FlowValveEngine random_engine(sim::Rng& rng, unsigned* out_leaves) {
  const unsigned leaves = 2 + static_cast<unsigned>(rng.next_below(4));
  *out_leaves = leaves;
  std::ostringstream s;
  s << "fv qdisc add dev nic0 root handle 1: htb rate 10gbit\n";
  for (unsigned i = 0; i < leaves; ++i) {
    const double weight = 0.5 + rng.next_double() * 4.0;
    const unsigned prio = static_cast<unsigned>(rng.next_below(2));
    s << "fv class add dev nic0 parent 1: classid 1:1" << i << " name leaf" << i
      << " weight " << weight << " prio " << prio;
    if (rng.chance(0.3)) s << " guarantee 1gbit";
    s << "\n";
  }
  for (unsigned i = 0; i < leaves; ++i) {
    s << "fv borrow add dev nic0 classid 1:1" << i << " from ";
    bool first = true;
    for (unsigned j = 0; j < leaves; ++j) {
      if (i == j) continue;
      if (!first) s << ",";
      s << "1:1" << j;
      first = false;
    }
    s << "\n";
  }
  for (unsigned i = 0; i < leaves; ++i)
    s << "fv filter add dev nic0 pref " << 10 + i << " vf " << i << " classid 1:1" << i
      << "\n";
  FlowValveEngine engine;
  const std::string err = engine.configure(s.str());
  EXPECT_EQ(err, "") << s.str();
  return engine;
}

class RandomPolicyInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPolicyInvariants, ConservationAndConformance) {
  sim::Rng rng(GetParam());
  unsigned leaves = 0;
  FlowValveEngine engine = random_engine(rng, &leaves);

  // Drive every leaf with a random offered load for 60 ms.
  struct Train {
    double rate_gbps;
    double next_ns = 0;
    std::uint64_t fwd_bytes = 0;
  };
  std::vector<Train> trains(leaves);
  for (auto& t : trains) t.rate_gbps = 0.5 + rng.next_double() * 7.0;

  const sim::SimTime horizon = sim::milliseconds(60);
  std::uint64_t total_fwd = 0;
  bool done = false;
  while (!done) {
    // Pick the earliest train.
    std::size_t next = 0;
    for (std::size_t i = 1; i < trains.size(); ++i)
      if (trains[i].next_ns < trains[next].next_ns) next = i;
    if (trains[next].next_ns >= static_cast<double>(horizon)) {
      done = true;
      continue;
    }
    net::Packet p;
    p.vf_port = static_cast<std::uint16_t>(next);
    p.wire_bytes = 200 + static_cast<std::uint32_t>(rng.next_below(1319));
    p.tuple.src_ip = 0x0a000001 + static_cast<std::uint32_t>(next);
    p.tuple.src_port = static_cast<std::uint16_t>(1000 + next);
    const auto r =
        engine.process(p, static_cast<sim::SimTime>(trains[next].next_ns));
    if (r.verdict == Verdict::kForward) {
      trains[next].fwd_bytes += p.wire_occupancy_bytes();
      total_fwd += p.wire_occupancy_bytes();
    }
    trains[next].next_ns += static_cast<double>(p.wire_occupancy_bytes()) * 8.0 /
                            trains[next].rate_gbps;
  }

  // Invariant 1: aggregate forwarded rate never exceeds the root policy
  // (plus bucket burst slack).
  const double total_gbps = static_cast<double>(total_fwd) * 8.0 /
                            static_cast<double>(horizon);
  EXPECT_LE(total_gbps, 10.9);

  // Invariant 2: token buckets never go negative; Γ and θ are finite and
  // non-negative for every class.
  const auto& tree = engine.tree();
  for (ClassId id = 0; id < tree.size(); ++id) {
    const auto& c = tree.at(id);
    EXPECT_GE(c.bucket.tokens(), 0.0) << c.name;
    EXPECT_GE(c.shadow.tokens(), 0.0) << c.name;
    EXPECT_GE(c.theta.bps(), 0.0) << c.name;
    EXPECT_GE(c.gamma().bps(), 0.0) << c.name;
    EXPECT_LE(c.theta.gbps(), 10.01) << c.name;
  }

  // Invariant 3: every packet got exactly one verdict, and the root class
  // saw every forwarded packet.
  const auto& st = engine.scheduler().stats();
  EXPECT_EQ(st.forwarded, tree.at(0).fwd_packets);
  std::uint64_t leaf_drops = 0;
  for (ClassId id = 0; id < tree.size(); ++id) leaf_drops += tree.at(id).drop_packets;
  EXPECT_EQ(st.dropped, leaf_drops);

  // Invariant 4: work conservation — if total offered clearly exceeds the
  // policy, the delivered total should reach at least 85% of it.
  double offered_gbps = 0;
  for (const auto& t : trains) offered_gbps += t.rate_gbps;
  if (offered_gbps > 12.0) {
    EXPECT_GE(total_gbps, 8.5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPolicyInvariants,
                         ::testing::Range<std::uint64_t>(1, 21));

class RandomTreeShape : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTreeShape, ThetaSumBoundedPerParent) {
  // For any parent, the sum of *reserved + weighted* child rates at a single
  // priority level never exceeds the parent θ (levels may overlap by design
  // — measured-residual reuse — but one level alone must be conservative).
  sim::Rng rng(GetParam() * 7919);
  SchedulingTree tree;
  const auto root = tree.add_root("root", Rate::gigabits_per_sec(10));
  const unsigned n = 2 + static_cast<unsigned>(rng.next_below(5));
  std::vector<ClassId> kids;
  for (unsigned i = 0; i < n; ++i) {
    NodePolicy p;
    p.weight = 0.25 + rng.next_double() * 4.0;
    kids.push_back(tree.add_class("k" + std::to_string(i), root, p));
  }
  tree.finalize();
  // All children active at some consumption.
  for (ClassId id : kids) {
    SchedClass& c = tree.at(id);
    c.ever_seen = true;
    c.last_seen = sim::milliseconds(50);
    for (int k = 0; k < 32; ++k)
      c.gamma_bps.observe(sim::milliseconds(18 + k), rng.next_double() * 5e9);
  }
  double sum = 0;
  for (ClassId id : kids) sum += tree.compute_theta(id, sim::milliseconds(50)).gbps();
  EXPECT_LE(sum, 10.01);
  EXPECT_GE(sum, 9.9);  // same level, all active → exact split
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreeShape,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace flowvalve::core
