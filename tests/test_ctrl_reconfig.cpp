// Control-plane reconfiguration tests (DESIGN.md §11): shadow validation
// rejection shapes, epoch-versioned staged rollout, probation + automatic
// rollback under injected control-plane faults, update-storm coalescing,
// flow-cache epoch invalidation on filter swaps, and the degradation
// guarantees (no reconfiguration-caused drops, bounded mixed-epoch window).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/flowvalve.h"
#include "ctrl/reconfig_manager.h"
#include "ctrl/validator.h"
#include "fault/fault_plane.h"
#include "np/flowvalve_processor.h"
#include "np/nic_pipeline.h"
#include "obs/export.h"
#include "obs/json_writer.h"
#include "obs/reconfig_tracker.h"
#include "sim/simulator.h"
#include "traffic/generators.h"

namespace flowvalve {
namespace {

using sim::Rate;

constexpr char kPolicy[] =
    "fv qdisc add dev nic0 root handle 1: htb rate 10gbit\n"
    "fv class add dev nic0 parent 1: classid 1:10 name gold weight 2\n"
    "fv class add dev nic0 parent 1: classid 1:11 name silver weight 1\n"
    "fv filter add dev nic0 pref 1 vf 0 classid 1:10\n"
    "fv filter add dev nic0 pref 2 vf 1 classid 1:11\n";

ctrl::PolicyUpdate weight_delta(const std::string& cls, double weight) {
  ctrl::PolicyDelta d;
  d.class_name = cls;
  d.weight = weight;
  ctrl::PolicyUpdate u;
  u.deltas.push_back(std::move(d));
  return u;
}

/// Full stack with a live control plane: 4-worker pipeline, two CBR flows
/// overloading a 10G link, tracker + manager with short test timescales.
struct Stack {
  sim::Simulator sim;
  core::FlowValveEngine engine;
  np::FlowValveProcessor processor;
  np::NicPipeline pipeline;
  traffic::FlowRouter router;
  traffic::IdAllocator ids;
  obs::ReconfigTracker tracker;
  std::unique_ptr<ctrl::ReconfigManager> mgr;
  std::vector<std::unique_ptr<traffic::CbrFlow>> flows;

  static np::NpConfig config() {
    np::NpConfig cfg = np::agilio_cx_40g();
    cfg.num_workers = 4;
    cfg.wire_rate = Rate::gigabits_per_sec(10);
    return cfg;
  }

  static ctrl::ReconfigManager::Options fast_options() {
    ctrl::ReconfigManager::Options o;
    o.stall_timeout = sim::microseconds(500);
    o.probation = sim::milliseconds(1);
    return o;
  }

  explicit Stack(const char* policy = kPolicy)
      : engine(np::engine_options_for(config())),
        processor(engine),
        pipeline(sim, config(), processor),
        router(pipeline) {
    EXPECT_EQ(engine.configure(policy), "");
    mgr = std::make_unique<ctrl::ReconfigManager>(sim, pipeline, engine,
                                                  &tracker, fast_options());
    const Rate per_flow = Rate::gigabits_per_sec(6);
    for (unsigned i = 0; i < 2; ++i) {
      traffic::FlowSpec fs;
      fs.flow_id = ids.next_flow_id();
      fs.app_id = i;
      fs.vf_port = static_cast<std::uint16_t>(i);
      fs.wire_bytes = 1500;
      flows.push_back(std::make_unique<traffic::CbrFlow>(
          sim, router, ids, fs, per_flow, sim::Rng(7).split(i), 0.05));
    }
  }

  void run(sim::SimTime horizon) {
    for (auto& f : flows) f->start();
    sim.run_until(horizon);
    for (auto& f : flows) f->stop();
    sim.run_all();
  }
};

// --- Shadow validation -----------------------------------------------------

TEST(ReconfigValidator, RejectsUnknownClass) {
  Stack s;
  const ctrl::ValidatedUpdate v =
      ctrl::validate_update(s.engine, weight_delta("missing", 2.0));
  EXPECT_FALSE(v.ok());
  EXPECT_NE(v.error.find("unknown class"), std::string::npos) << v.error;
}

TEST(ReconfigValidator, RejectsNonPositiveWeight) {
  Stack s;
  EXPECT_FALSE(ctrl::validate_update(s.engine, weight_delta("gold", 0.0)).ok());
  EXPECT_FALSE(ctrl::validate_update(s.engine, weight_delta("gold", -1.0)).ok());
}

TEST(ReconfigValidator, RejectsGuaranteeAboveCeil) {
  Stack s;
  ctrl::PolicyDelta d;
  d.class_name = "gold";
  d.guarantee = Rate::gigabits_per_sec(9);
  d.ceil = Rate::gigabits_per_sec(2);
  ctrl::PolicyUpdate u;
  u.deltas.push_back(d);
  const ctrl::ValidatedUpdate v = ctrl::validate_update(s.engine, u);
  EXPECT_FALSE(v.ok());
  EXPECT_NE(v.error.find("guarantee exceeds ceil"), std::string::npos) << v.error;
}

TEST(ReconfigValidator, RejectsChildGuaranteesAboveParentCeil) {
  Stack s;
  // gold 6G + silver 6G guarantees > root's 10G ceiling.
  ctrl::PolicyUpdate u;
  for (const char* name : {"gold", "silver"}) {
    ctrl::PolicyDelta d;
    d.class_name = name;
    d.guarantee = Rate::gigabits_per_sec(6);
    u.deltas.push_back(d);
  }
  const ctrl::ValidatedUpdate v = ctrl::validate_update(s.engine, u);
  EXPECT_FALSE(v.ok());
  EXPECT_NE(v.error.find("summing above the parent ceil"), std::string::npos)
      << v.error;
}

TEST(ReconfigValidator, RejectsScriptParseError) {
  Stack s;
  ctrl::PolicyUpdate u;
  u.fv_script = "fv qdisc add dev nic0 root handle 1: htb rate NONSENSE\n";
  const ctrl::ValidatedUpdate v = ctrl::validate_update(s.engine, u);
  EXPECT_FALSE(v.ok());
}

TEST(ReconfigValidator, RejectsStructuralChange) {
  Stack s;
  ctrl::PolicyUpdate u;
  u.fv_script =
      "fv qdisc add dev nic0 root handle 1: htb rate 10gbit\n"
      "fv class add dev nic0 parent 1: classid 1:10 name gold weight 2\n"
      "fv class add dev nic0 parent 1: classid 1:11 name silver weight 1\n"
      "fv class add dev nic0 parent 1: classid 1:12 name bronze weight 1\n";
  const ctrl::ValidatedUpdate v = ctrl::validate_update(s.engine, u);
  EXPECT_FALSE(v.ok());
  EXPECT_NE(v.error.find("structural change"), std::string::npos) << v.error;
}

TEST(ReconfigValidator, AcceptsWeightRescaleScript) {
  Stack s;
  ctrl::PolicyUpdate u;
  u.fv_script =
      "fv qdisc add dev nic0 root handle 1: htb rate 10gbit\n"
      "fv class add dev nic0 parent 1: classid 1:10 name gold weight 1\n"
      "fv class add dev nic0 parent 1: classid 1:11 name silver weight 4\n"
      "fv filter add dev nic0 pref 1 vf 0 classid 1:11\n"
      "fv filter add dev nic0 pref 2 vf 1 classid 1:10\n";
  const ctrl::ValidatedUpdate v = ctrl::validate_update(s.engine, u);
  EXPECT_TRUE(v.ok()) << v.error;
  EXPECT_TRUE(v.replace_filters);
  EXPECT_EQ(v.filters.size(), 2u);
}

// --- Staged rollout --------------------------------------------------------

TEST(ReconfigRollout, DeltaCommitsAndChangesLivePolicy) {
  Stack s;
  s.sim.schedule_at(sim::milliseconds(2),
                    [&s] { EXPECT_EQ(s.mgr->apply(weight_delta("gold", 8.0)), ""); });
  s.run(sim::milliseconds(8));

  EXPECT_EQ(s.mgr->state(), ctrl::ReconfigManager::State::kIdle);
  EXPECT_EQ(s.mgr->epoch(), 1u);
  EXPECT_EQ(s.mgr->stats().committed, 1u);
  EXPECT_EQ(s.mgr->stats().rolled_back, 0u);
  const core::SchedulingTree& tree = s.engine.tree();
  EXPECT_DOUBLE_EQ(tree.at(tree.find("gold")).policy.weight, 8.0);
  // Degradation guarantee: the swap itself dropped nothing.
  EXPECT_FALSE(s.mgr->stats().admission_forced);
  EXPECT_FALSE(s.pipeline.admission_forced());
  ASSERT_EQ(s.tracker.records().size(), 1u);
  EXPECT_EQ(s.tracker.records()[0].outcome, "committed");
  EXPECT_GE(s.tracker.records()[0].swap_latency(), 0);
}

TEST(ReconfigRollout, RejectionLeavesTreeUntouched) {
  Stack s;
  const double before = s.engine.tree().at(s.engine.tree().find("gold")).policy.weight;
  EXPECT_NE(s.mgr->apply(weight_delta("gold", -3.0)), "");
  EXPECT_EQ(s.mgr->state(), ctrl::ReconfigManager::State::kIdle);
  EXPECT_EQ(s.mgr->epoch(), 0u);
  EXPECT_DOUBLE_EQ(s.engine.tree().at(s.engine.tree().find("gold")).policy.weight,
                   before);
  EXPECT_EQ(s.mgr->stats().rejected, 1u);
  ASSERT_EQ(s.tracker.records().size(), 1u);
  EXPECT_EQ(s.tracker.records()[0].outcome.rfind("rejected", 0), 0u);
}

TEST(ReconfigRollout, MixedEpochConfinedToRolloutWindow) {
  Stack s;
  s.sim.schedule_at(sim::milliseconds(2),
                    [&s] { s.mgr->apply(weight_delta("silver", 5.0)); });
  s.run(sim::milliseconds(8));
  // Whatever mixed-epoch packets occurred, they were all inside the rollout
  // window of the single update (tracked per record, totalled in stats).
  ASSERT_EQ(s.tracker.records().size(), 1u);
  EXPECT_EQ(s.tracker.records()[0].mixed_epoch_packets,
            s.mgr->stats().mixed_epoch_packets);
}

// --- Faults and rollback ---------------------------------------------------

TEST(ReconfigRollback, TornUpdateDetectedAndRolledBack) {
  Stack s;
  s.mgr->fault_tear_update(1);  // every staged class loses its word
  s.sim.schedule_at(sim::milliseconds(2),
                    [&s] { EXPECT_EQ(s.mgr->apply(weight_delta("gold", 8.0)), ""); });
  s.run(sim::milliseconds(8));

  EXPECT_EQ(s.mgr->stats().rolled_back, 1u);
  EXPECT_EQ(s.mgr->stats().committed, 0u);
  // Prior policy restored, at a strictly higher epoch (monotonic epochs).
  const core::SchedulingTree& tree = s.engine.tree();
  EXPECT_DOUBLE_EQ(tree.at(tree.find("gold")).policy.weight, 2.0);
  EXPECT_GE(s.mgr->epoch(), 2u);
  ASSERT_EQ(s.tracker.records().size(), 1u);
  EXPECT_NE(s.tracker.records()[0].outcome.find("torn-update"), std::string::npos);
  EXPECT_EQ(s.pipeline.stats().admission_drops, 0u);
}

TEST(ReconfigRollback, StaleEpochWorkerStallsThenRollsBack) {
  Stack s;
  s.mgr->fault_stale_worker(0);
  s.sim.schedule_at(sim::milliseconds(2),
                    [&s] { s.mgr->apply(weight_delta("gold", 8.0)); });
  s.run(sim::milliseconds(8));

  EXPECT_EQ(s.mgr->stats().rolled_back, 1u);
  const core::SchedulingTree& tree = s.engine.tree();
  EXPECT_DOUBLE_EQ(tree.at(tree.find("gold")).policy.weight, 2.0);
  ASSERT_EQ(s.tracker.records().size(), 1u);
  EXPECT_NE(s.tracker.records()[0].outcome.find("stale-epoch"), std::string::npos);
}

TEST(ReconfigRollback, RollbackIsDeterministic) {
  auto run_once = [] {
    Stack s;
    s.mgr->fault_tear_update(1);
    s.sim.schedule_at(sim::milliseconds(2),
                      [&s] { s.mgr->apply(weight_delta("gold", 8.0)); });
    s.run(sim::milliseconds(8));
    return std::make_tuple(s.pipeline.stats().forwarded_to_wire,
                           s.pipeline.stats().wire_bytes, s.mgr->epoch(),
                           s.tracker.records()[0].rolled_back_at);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ReconfigRollback, GuardRegressionTriggersRollback) {
  Stack s;
  s.mgr->set_guard([](sim::SimTime) { return std::string("synthetic metric regression"); });
  s.sim.schedule_at(sim::milliseconds(2),
                    [&s] { s.mgr->apply(weight_delta("gold", 8.0)); });
  s.run(sim::milliseconds(8));
  EXPECT_EQ(s.mgr->stats().rolled_back, 1u);
  ASSERT_EQ(s.tracker.records().size(), 1u);
  EXPECT_NE(s.tracker.records()[0].outcome.find("synthetic metric regression"),
            std::string::npos);
}

TEST(ReconfigRollback, OperatorRollbackRestoresPriorPolicy) {
  Stack s;
  s.sim.schedule_at(sim::milliseconds(2),
                    [&s] { s.mgr->apply(weight_delta("gold", 8.0)); });
  // Mid-probation (cutover is fast under load; probation is 1ms).
  s.sim.schedule_at(sim::milliseconds(3),
                    [&s] { EXPECT_TRUE(s.mgr->rollback("operator")); });
  s.run(sim::milliseconds(8));
  const core::SchedulingTree& tree = s.engine.tree();
  EXPECT_DOUBLE_EQ(tree.at(tree.find("gold")).policy.weight, 2.0);
  EXPECT_EQ(s.mgr->stats().rolled_back, 1u);
  EXPECT_FALSE(s.mgr->rollback("idle"));  // nothing in flight afterwards
}

TEST(ReconfigStorm, UpdatesCoalesceToNewestPending) {
  Stack s;
  s.sim.schedule_at(sim::milliseconds(2), [&s] { s.mgr->storm(8); });
  s.run(sim::milliseconds(12));
  const ctrl::ReconfigManager::Stats& st = s.mgr->stats();
  EXPECT_EQ(st.applied, 8u);
  EXPECT_EQ(st.coalesced, 6u);  // first starts, the other 7 overwrite a queue of 1
  EXPECT_EQ(st.committed, 2u);  // the first rollout + the surviving queued one
  EXPECT_EQ(s.mgr->state(), ctrl::ReconfigManager::State::kIdle);
  EXPECT_EQ(s.tracker.coalesced(), 6u);
}

TEST(ReconfigFaultPlane, TornUpdateThroughScheduleRollsBack) {
  Stack s;
  obs::RecoveryTracker recovery;
  fault::FaultPlane plane(s.sim, s.pipeline, &s.engine, &recovery);
  plane.set_reconfig(s.mgr.get());
  fault::FaultEvent ev;
  ev.kind = fault::FaultKind::kTornUpdate;
  ev.at = sim::milliseconds(1);
  ev.duration = sim::milliseconds(6);
  plane.arm({ev});
  s.sim.schedule_at(sim::milliseconds(2),
                    [&s] { s.mgr->apply(weight_delta("gold", 8.0)); });
  s.run(sim::milliseconds(12));
  plane.finalize();

  EXPECT_EQ(s.mgr->stats().rolled_back, 1u);
  EXPECT_EQ(recovery.injected(), 1u);
  EXPECT_EQ(recovery.recovered(), 1u);
  // Degradation guarantee: the failed reconfiguration cost zero packets.
  EXPECT_EQ(s.pipeline.stats().admission_drops, 0u);
}

// --- Flow-cache epoch invalidation ----------------------------------------

TEST(ReconfigCache, FilterSwapInvalidatesStaleEntriesLazily) {
  Stack s;
  ctrl::PolicyUpdate u;
  u.fv_script =  // same shape, filters redirected gold<->silver
      "fv qdisc add dev nic0 root handle 1: htb rate 10gbit\n"
      "fv class add dev nic0 parent 1: classid 1:10 name gold weight 2\n"
      "fv class add dev nic0 parent 1: classid 1:11 name silver weight 1\n"
      "fv filter add dev nic0 pref 1 vf 0 classid 1:11\n"
      "fv filter add dev nic0 pref 2 vf 1 classid 1:10\n";
  s.sim.schedule_at(sim::milliseconds(2), [&s, &u] {
    EXPECT_EQ(s.mgr->apply(u), "");
  });
  s.run(sim::milliseconds(8));

  EXPECT_EQ(s.mgr->stats().committed, 1u);
  // The swap bumped the label epoch instead of flushing: stale cached
  // entries were invalidated in place on their next hit and re-classified.
  const core::ExactMatchFlowCache::Stats& cs =
      s.engine.classifier().cache().stats();
  EXPECT_GT(cs.stale_invalidations, 0u);
  // Traffic on vf 0 now lands in silver.
  const core::SchedulingTree& tree = s.engine.tree();
  EXPECT_GT(tree.at(tree.find("silver")).fwd_packets, 0u);
}

// --- Observability ---------------------------------------------------------

TEST(ReconfigObs, TrackerJsonRoundTrip) {
  Stack s;
  s.sim.schedule_at(sim::milliseconds(2),
                    [&s] { s.mgr->apply(weight_delta("gold", 4.0)); });
  s.run(sim::milliseconds(8));
  obs::JsonWriter w;
  obs::reconfig_json(w, s.tracker);
  const std::string json = w.str();
  EXPECT_NE(json.find("\"updates\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"outcome\":\"committed\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"target_epoch\":1"), std::string::npos) << json;
}

}  // namespace
}  // namespace flowvalve
