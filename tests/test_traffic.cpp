// Unit tests for the traffic sources: AIMD and Reno TCP models, open-loop
// generators, and the AppProcess grouping.
#include <gtest/gtest.h>

#include <memory>

#include "sim/simulator.h"
#include "traffic/app.h"
#include "traffic/generators.h"
#include "traffic/tcp.h"

namespace flowvalve::traffic {
namespace {

using sim::Rate;

/// Token-bucket bottleneck device: forwards while tokens last, else drops.
/// Gives TCP models a deterministic bottleneck to converge against.
class BottleneckDevice final : public net::EgressDevice {
 public:
  BottleneckDevice(sim::Simulator& sim, Rate rate, sim::SimDuration delivery_delay)
      : sim_(sim), rate_(rate), delay_(delivery_delay), last_(0) {
    tokens_ = burst_ = rate.bytes_per_ns() * 1e6 + 10000.0;  // ~1ms of burst
  }

  bool submit(net::Packet pkt) override {
    const sim::SimTime now = sim_.now();
    tokens_ = std::min(burst_, tokens_ + rate_.bytes_per_ns() *
                                             static_cast<double>(now - last_));
    last_ = now;
    ++offered_;
    if (tokens_ >= pkt.wire_bytes) {
      tokens_ -= pkt.wire_bytes;
      delivered_bytes_ += pkt.wire_bytes;
      sim_.schedule_after(delay_, [this, pkt]() mutable {
        pkt.wire_tx_done = sim_.now();
        pkt.delivered_at = sim_.now();
        deliver(pkt);
      });
      return true;
    }
    ++drops_;
    notify_drop(pkt);
    return false;
  }

  std::uint64_t drops() const { return drops_; }
  std::uint64_t offered() const { return offered_; }
  Rate delivered_rate(sim::SimTime now) const {
    return Rate::bytes_per_sec(static_cast<double>(delivered_bytes_) * 1e9 /
                               static_cast<double>(now));
  }

 private:
  sim::Simulator& sim_;
  Rate rate_;
  sim::SimDuration delay_;
  sim::SimTime last_;
  double tokens_, burst_;
  std::uint64_t drops_ = 0, offered_ = 0;
  std::uint64_t delivered_bytes_ = 0;
};

FlowSpec spec_for(IdAllocator& ids, std::uint32_t app, std::uint32_t bytes = 1518) {
  FlowSpec s;
  s.flow_id = ids.next_flow_id();
  s.app_id = app;
  s.vf_port = static_cast<std::uint16_t>(app);
  s.wire_bytes = bytes;
  s.tuple.src_ip = 0x0a000001;
  s.tuple.dst_ip = 0x0a000002;
  s.tuple.src_port = static_cast<std::uint16_t>(5000 + app);
  s.tuple.dst_port = 80;
  return s;
}

TEST(TcpAimd, IncreasesWithoutLoss) {
  sim::Simulator sim;
  BottleneckDevice dev(sim, Rate::gigabits_per_sec(100), sim::microseconds(10));
  IdAllocator ids;
  FlowRouter router(dev);
  TcpAimdConfig cfg;
  cfg.start_rate = Rate::megabits_per_sec(100);
  cfg.additive_increase = Rate::megabits_per_sec(100);
  cfg.max_rate = Rate::gigabits_per_sec(5);
  TcpAimdFlow flow(sim, router, ids, spec_for(ids, 0), cfg, sim::Rng(1));
  flow.start();
  sim.run_until(sim::milliseconds(50));
  // 25 RTTs of +100M from 100M, capped at 5G.
  EXPECT_GT(flow.current_rate().gbps(), 2.0);
  EXPECT_EQ(flow.packets_lost(), 0u);
}

TEST(TcpAimd, RespectsMaxRate) {
  sim::Simulator sim;
  BottleneckDevice dev(sim, Rate::gigabits_per_sec(100), sim::microseconds(10));
  IdAllocator ids;
  FlowRouter router(dev);
  TcpAimdConfig cfg;
  cfg.max_rate = Rate::gigabits_per_sec(1);
  cfg.additive_increase = Rate::megabits_per_sec(500);
  TcpAimdFlow flow(sim, router, ids, spec_for(ids, 0), cfg, sim::Rng(1));
  flow.start();
  sim.run_until(sim::milliseconds(100));
  EXPECT_LE(flow.current_rate().gbps(), 1.001);
}

TEST(TcpAimd, BacksOffOnLoss) {
  sim::Simulator sim;
  BottleneckDevice dev(sim, Rate::gigabits_per_sec(1), sim::microseconds(10));
  IdAllocator ids;
  FlowRouter router(dev);
  TcpAimdConfig cfg;
  cfg.start_rate = Rate::gigabits_per_sec(3);  // above the bottleneck
  cfg.md_factor = 0.7;
  TcpAimdFlow flow(sim, router, ids, spec_for(ids, 0), cfg, sim::Rng(1));
  flow.start();
  sim.run_until(sim::milliseconds(20));
  EXPECT_GT(flow.packets_lost(), 0u);
  EXPECT_LT(flow.current_rate().gbps(), 3.0);
}

TEST(TcpAimd, ConvergesToBottleneck) {
  sim::Simulator sim;
  BottleneckDevice dev(sim, Rate::gigabits_per_sec(2), sim::microseconds(10));
  IdAllocator ids;
  FlowRouter router(dev);
  TcpAimdConfig cfg;
  cfg.additive_increase = Rate::megabits_per_sec(80);
  cfg.md_factor = 0.9;
  cfg.max_rate = Rate::gigabits_per_sec(4);
  TcpAimdFlow flow(sim, router, ids, spec_for(ids, 0), cfg, sim::Rng(1));
  flow.start();
  sim.run_until(sim::milliseconds(500));
  EXPECT_NEAR(dev.delivered_rate(sim.now()).gbps(), 2.0, 0.25);
}

TEST(TcpAimd, StopHaltsTraffic) {
  sim::Simulator sim;
  BottleneckDevice dev(sim, Rate::gigabits_per_sec(10), sim::microseconds(10));
  IdAllocator ids;
  FlowRouter router(dev);
  TcpAimdFlow flow(sim, router, ids, spec_for(ids, 0), TcpAimdConfig{}, sim::Rng(1));
  flow.start();
  sim.run_until(sim::milliseconds(10));
  flow.stop();
  const auto sent = flow.packets_sent();
  sim.run_until(sim::milliseconds(30));
  EXPECT_EQ(flow.packets_sent(), sent);
  EXPECT_FALSE(flow.active());
}

TEST(TcpReno, SlowStartGrowsCwndExponentially) {
  sim::Simulator sim;
  BottleneckDevice dev(sim, Rate::gigabits_per_sec(100), sim::microseconds(100));
  IdAllocator ids;
  FlowRouter router(dev);
  TcpRenoConfig cfg;
  cfg.initial_cwnd = 2;
  cfg.ssthresh = 64;
  TcpRenoFlow flow(sim, router, ids, spec_for(ids, 0), cfg);
  flow.start();
  sim.run_until(sim::milliseconds(20));
  EXPECT_GE(flow.cwnd(), 60.0);
}

TEST(TcpReno, FastRecoveryHalvesOnLoss) {
  sim::Simulator sim;
  BottleneckDevice dev(sim, Rate::megabits_per_sec(500), sim::microseconds(100));
  IdAllocator ids;
  FlowRouter router(dev);
  TcpRenoConfig cfg;
  TcpRenoFlow flow(sim, router, ids, spec_for(ids, 0), cfg);
  flow.start();
  sim.run_until(sim::milliseconds(300));
  EXPECT_GT(flow.packets_lost(), 0u);
  // Converged goodput close to bottleneck.
  EXPECT_NEAR(flow.goodput(sim.now()).mbps(), 500.0, 150.0);
}

TEST(CbrFlowTest, HoldsConfiguredRate) {
  sim::Simulator sim;
  BottleneckDevice dev(sim, Rate::gigabits_per_sec(100), sim::microseconds(10));
  IdAllocator ids;
  FlowRouter router(dev);
  CbrFlow flow(sim, router, ids, spec_for(ids, 0, 1000), Rate::gigabits_per_sec(1),
               sim::Rng(3), 0.0);
  flow.start();
  sim.run_until(sim::milliseconds(100));
  const double expected = 1e9 * 0.1 / 8.0 / 1000.0;  // packets in 100 ms
  EXPECT_NEAR(static_cast<double>(flow.packets_sent()), expected, expected * 0.02);
}

TEST(CbrFlowTest, SetRateTakesEffect) {
  sim::Simulator sim;
  BottleneckDevice dev(sim, Rate::gigabits_per_sec(100), sim::microseconds(10));
  IdAllocator ids;
  FlowRouter router(dev);
  CbrFlow flow(sim, router, ids, spec_for(ids, 0, 1000), Rate::gigabits_per_sec(1),
               sim::Rng(3), 0.0);
  flow.start();
  sim.run_until(sim::milliseconds(50));
  const auto before = flow.packets_sent();
  flow.set_rate(Rate::gigabits_per_sec(2));
  sim.run_until(sim::milliseconds(100));
  const auto delta = flow.packets_sent() - before;
  EXPECT_NEAR(static_cast<double>(delta), 2.0 * static_cast<double>(before),
              static_cast<double>(before) * 0.1);
}

TEST(PoissonFlowTest, MeanRateApproximatelyCorrect) {
  sim::Simulator sim;
  BottleneckDevice dev(sim, Rate::gigabits_per_sec(100), sim::microseconds(10));
  IdAllocator ids;
  FlowRouter router(dev);
  PoissonFlow flow(sim, router, ids, spec_for(ids, 0, 1000), Rate::gigabits_per_sec(1),
                   sim::Rng(5));
  flow.start();
  sim.run_until(sim::milliseconds(200));
  const double expected = 1e9 * 0.2 / 8.0 / 1000.0;
  EXPECT_NEAR(static_cast<double>(flow.packets_sent()), expected, expected * 0.1);
}

TEST(OnOffFlowTest, DutyCycleScalesRate) {
  sim::Simulator sim;
  BottleneckDevice dev(sim, Rate::gigabits_per_sec(100), sim::microseconds(10));
  IdAllocator ids;
  FlowRouter router(dev);
  // 50% duty: mean on == mean off.
  OnOffFlow flow(sim, router, ids, spec_for(ids, 0, 1000), Rate::gigabits_per_sec(2),
                 sim::milliseconds(5), sim::milliseconds(5), sim::Rng(7));
  flow.start();
  sim.run_until(sim::milliseconds(500));
  const double full_rate_pkts = 2e9 * 0.5 / 8.0 / 1000.0;
  EXPECT_NEAR(static_cast<double>(flow.packets_sent()), full_rate_pkts * 0.5,
              full_rate_pkts * 0.2);
}

TEST(AppProcessTest, RunBetweenStartsAndStops) {
  sim::Simulator sim;
  BottleneckDevice dev(sim, Rate::gigabits_per_sec(100), sim::microseconds(10));
  IdAllocator ids;
  FlowRouter router(dev);
  AppConfig cfg;
  cfg.name = "app";
  cfg.num_connections = 2;
  AppProcess app(sim, router, ids, cfg, sim::Rng(9));
  app.run_between(sim::milliseconds(10), sim::milliseconds(30));
  sim.run_until(sim::milliseconds(5));
  EXPECT_FALSE(app.active());
  EXPECT_EQ(app.packets_sent(), 0u);
  sim.run_until(sim::milliseconds(20));
  EXPECT_TRUE(app.active());
  EXPECT_GT(app.packets_sent(), 0u);
  sim.run_until(sim::milliseconds(35));
  const auto sent = app.packets_sent();
  sim.run_until(sim::milliseconds(60));
  EXPECT_EQ(app.packets_sent(), sent);
}

TEST(AppProcessTest, SetConnectionsGrowsAndShrinks) {
  sim::Simulator sim;
  BottleneckDevice dev(sim, Rate::gigabits_per_sec(100), sim::microseconds(10));
  IdAllocator ids;
  FlowRouter router(dev);
  AppConfig cfg;
  cfg.name = "app";
  cfg.num_connections = 1;
  AppProcess app(sim, router, ids, cfg, sim::Rng(9));
  app.start();
  app.set_connections(4);
  EXPECT_EQ(app.connections(), 4u);
  sim.run_until(sim::milliseconds(10));
  app.set_connections(2);
  EXPECT_EQ(app.connections(), 2u);
  sim.run_until(sim::milliseconds(20));
  EXPECT_GT(app.packets_sent(), 0u);
}

TEST(FlowRouterTest, TracksAppSeriesAndLatency) {
  sim::Simulator sim;
  BottleneckDevice dev(sim, Rate::gigabits_per_sec(100), sim::microseconds(10));
  IdAllocator ids;
  FlowRouter router(dev);
  stats::ThroughputSeries series(sim::milliseconds(10));
  stats::LatencyStats lat;
  router.track_app(3, &series);
  router.track_app_latency(3, &lat);
  CbrFlow flow(sim, router, ids, spec_for(ids, 3, 1000), Rate::gigabits_per_sec(1),
               sim::Rng(3), 0.0);
  flow.start();
  sim.run_until(sim::milliseconds(20));
  EXPECT_GT(series.total_bytes(), 0u);
  EXPECT_GT(lat.count(), 0u);
  EXPECT_NEAR(lat.mean_us(), 10.0, 0.5);
}

}  // namespace
}  // namespace flowvalve::traffic
