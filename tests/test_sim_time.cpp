// Unit tests for virtual time and the Rate value type.
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/time.h"

namespace flowvalve::sim {
namespace {

TEST(SimTime, DurationConstructors) {
  EXPECT_EQ(nanoseconds(5), 5);
  EXPECT_EQ(microseconds(3), 3'000);
  EXPECT_EQ(milliseconds(2), 2'000'000);
  EXPECT_EQ(seconds(1), 1'000'000'000);
  EXPECT_EQ(seconds_f(0.5), 500'000'000);
  EXPECT_EQ(seconds_f(1.5), 1'500'000'000);
}

TEST(SimTime, DurationAccessors) {
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2)), 2.0);
  EXPECT_DOUBLE_EQ(to_millis(milliseconds(7)), 7.0);
  EXPECT_DOUBLE_EQ(to_micros(microseconds(9)), 9.0);
}

TEST(Rate, UnitConstructors) {
  EXPECT_DOUBLE_EQ(Rate::bits_per_sec(1e9).gbps(), 1.0);
  EXPECT_DOUBLE_EQ(Rate::kilobits_per_sec(1).bps(), 1e3);
  EXPECT_DOUBLE_EQ(Rate::megabits_per_sec(1).bps(), 1e6);
  EXPECT_DOUBLE_EQ(Rate::gigabits_per_sec(40).bps(), 40e9);
  EXPECT_DOUBLE_EQ(Rate::bytes_per_sec(1).bps(), 8.0);
}

TEST(Rate, ByteAccessors) {
  const Rate r = Rate::gigabits_per_sec(8);
  EXPECT_DOUBLE_EQ(r.bytes_per_sec(), 1e9);
  EXPECT_DOUBLE_EQ(r.bytes_per_ns(), 1.0);
}

TEST(Rate, SerializationDelay) {
  // 1538 bytes at 40 Gbps = 1538*8/40 ns = 307.6 ns.
  const Rate r = Rate::gigabits_per_sec(40);
  EXPECT_NEAR(static_cast<double>(r.serialization_delay(1538)), 307.6, 1.0);
  // Dead wire: never finishes.
  EXPECT_EQ(Rate::zero().serialization_delay(100), kSimTimeMax);
}

TEST(Rate, BytesIn) {
  const Rate r = Rate::gigabits_per_sec(8);  // 1 byte/ns
  EXPECT_DOUBLE_EQ(r.bytes_in(milliseconds(1)), 1e6);
}

TEST(Rate, Arithmetic) {
  const Rate a = Rate::gigabits_per_sec(6);
  const Rate b = Rate::gigabits_per_sec(2);
  EXPECT_DOUBLE_EQ((a + b).gbps(), 8.0);
  EXPECT_DOUBLE_EQ((a - b).gbps(), 4.0);
  EXPECT_DOUBLE_EQ((a * 0.5).gbps(), 3.0);
  EXPECT_DOUBLE_EQ((0.5 * a).gbps(), 3.0);
  EXPECT_DOUBLE_EQ((a / 2.0).gbps(), 3.0);
  EXPECT_DOUBLE_EQ(a / b, 3.0);
  EXPECT_LT(b, a);
  EXPECT_EQ(a, Rate::megabits_per_sec(6000));
}

TEST(Rate, ClampedZeroesNegatives) {
  const Rate neg = Rate::gigabits_per_sec(2) - Rate::gigabits_per_sec(5);
  EXPECT_LT(neg.bps(), 0.0);
  EXPECT_DOUBLE_EQ(neg.clamped().bps(), 0.0);
  EXPECT_DOUBLE_EQ(Rate::gigabits_per_sec(1).clamped().gbps(), 1.0);
}

TEST(Rate, IsZero) {
  EXPECT_TRUE(Rate::zero().is_zero());
  EXPECT_TRUE((Rate::zero() - Rate::gigabits_per_sec(1)).is_zero());
  EXPECT_FALSE(Rate::bits_per_sec(1).is_zero());
}

TEST(Rate, ToString) {
  EXPECT_EQ(Rate::gigabits_per_sec(10).to_string(), "10.000Gbps");
  EXPECT_EQ(Rate::megabits_per_sec(5).to_string(), "5.000Mbps");
  EXPECT_EQ(Rate::kilobits_per_sec(2).to_string(), "2.000Kbps");
  EXPECT_EQ(Rate::bits_per_sec(10).to_string(), "10.0bps");
}

// Parameterized: serialization delay times rate recovers the byte count.
class RateRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(RateRoundTrip, DelayTimesRateIsBytes) {
  const Rate r = Rate::gigabits_per_sec(GetParam());
  for (std::uint64_t bytes : {64ull, 1538ull, 65556ull}) {
    const SimDuration d = r.serialization_delay(bytes);
    // Delays are integer nanoseconds, so allow the ±0.5 ns quantization in
    // addition to 1% slack.
    const double tol = std::max(static_cast<double>(bytes) * 0.01, r.bytes_per_ns() * 0.6);
    EXPECT_NEAR(r.bytes_in(d), static_cast<double>(bytes), tol);
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, RateRoundTrip,
                         ::testing::Values(0.1, 1.0, 10.0, 25.0, 40.0, 100.0));

}  // namespace
}  // namespace flowvalve::sim
