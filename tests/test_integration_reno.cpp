// Cross-validation: the throughput-over-time figures use a rate-based AIMD
// sender (the mTCP-style analyzer); this test re-runs a fair-queueing
// scenario with the *window-based Reno* model to show the enforced shares
// do not depend on the congestion-control abstraction.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/flowvalve.h"
#include "exp/scenarios.h"
#include "np/flowvalve_processor.h"
#include "np/nic_pipeline.h"
#include "sim/simulator.h"
#include "traffic/tcp.h"

namespace flowvalve {
namespace {

using sim::Rate;

TEST(IntegrationReno, FairSharesWithWindowBasedTcp) {
  sim::Simulator sim;
  np::NpConfig nic = np::agilio_cx_40g();
  // MTU frames at a 10G policy (Reno is ack-clocked; super-packets would
  // make windows too coarse). Loss-based CC with a bufferless valve needs
  // burst absorption ≈ a window's worth, so widen the buckets — exactly the
  // trade a deployment would tune.
  auto opt = np::engine_options_for(nic);
  opt.params.burst_window = sim::milliseconds(1);
  opt.params.shadow_burst_window = sim::microseconds(500);
  core::FlowValveEngine engine(opt);
  ASSERT_EQ(engine.configure(
                exp::fair_queueing_script(Rate::gigabits_per_sec(10), 2)),
            "");
  np::FlowValveProcessor proc(engine);
  np::NicPipeline pipeline(sim, nic, proc);

  traffic::IdAllocator ids;
  traffic::FlowRouter router(pipeline);
  stats::ThroughputSeries s0(sim::milliseconds(100)), s1(sim::milliseconds(100));
  router.track_app(0, &s0);
  router.track_app(1, &s1);

  traffic::TcpRenoConfig cfg;
  cfg.max_cwnd = 4096;
  cfg.ssthresh = 256;
  std::vector<std::unique_ptr<traffic::TcpRenoFlow>> flows;
  for (std::uint16_t app = 0; app < 2; ++app) {
    for (int conn = 0; conn < 4; ++conn) {
      traffic::FlowSpec spec;
      spec.flow_id = ids.next_flow_id();
      spec.app_id = app;
      spec.vf_port = app;
      spec.wire_bytes = 1518;
      spec.tuple.src_ip = 0x0a000001u + app;
      spec.tuple.src_port = static_cast<std::uint16_t>(44000 + app * 10 + conn);
      flows.push_back(
          std::make_unique<traffic::TcpRenoFlow>(sim, router, ids, spec, cfg));
      flows.back()->start();
    }
  }
  sim.run_until(sim::seconds(4));

  // Reno's bufferless-sawtooth under-utilizes in absolute terms (expected:
  // loss-based CC needs a window of buffering to fill a link), but the
  // *relative* shares still come from the scheduler, not the traffic model.
  const double g0 = s0.mean_rate(10, 40).gbps();
  const double g1 = s1.mean_rate(10, 40).gbps();
  EXPECT_GT(g0 + g1, 5.5);
  const double ratio = std::max(g0, g1) / std::max(0.01, std::min(g0, g1));
  EXPECT_LT(ratio, 1.6);
}

TEST(IntegrationReno, PriorityHoldsWithWindowBasedTcp) {
  sim::Simulator sim;
  np::NpConfig nic = np::agilio_cx_40g();
  auto opt = np::engine_options_for(nic);
  opt.params.burst_window = sim::milliseconds(1);
  core::FlowValveEngine engine(opt);
  ASSERT_EQ(engine.configure(
                "fv qdisc add dev nic0 root handle 1: htb rate 10gbit\n"
                "fv class add dev nic0 parent 1: classid 1:10 name hi prio 0 weight 1\n"
                "fv class add dev nic0 parent 1: classid 1:11 name lo prio 1 weight 1\n"
                "fv filter add dev nic0 pref 1 vf 0 classid 1:10\n"
                "fv filter add dev nic0 pref 2 vf 1 classid 1:11\n"),
            "");
  np::FlowValveProcessor proc(engine);
  np::NicPipeline pipeline(sim, nic, proc);
  traffic::IdAllocator ids;
  traffic::FlowRouter router(pipeline);
  stats::ThroughputSeries hi(sim::milliseconds(100)), lo(sim::milliseconds(100));
  router.track_app(0, &hi);
  router.track_app(1, &lo);

  // Enough connections that aggregate demand clearly exceeds the link, so
  // the scheduler (not CC noise) determines the split.
  traffic::TcpRenoConfig cfg;
  cfg.max_cwnd = 4096;
  std::vector<std::unique_ptr<traffic::TcpRenoFlow>> flows;
  for (std::uint16_t app = 0; app < 2; ++app) {
    for (int conn = 0; conn < 4; ++conn) {
      traffic::FlowSpec spec;
      spec.flow_id = ids.next_flow_id();
      spec.app_id = app;
      spec.vf_port = app;
      spec.wire_bytes = 1518;
      spec.tuple.src_ip = 0x0a000001u + app;
      spec.tuple.src_port = static_cast<std::uint16_t>(45000 + app * 10 + conn);
      flows.push_back(
          std::make_unique<traffic::TcpRenoFlow>(sim, router, ids, spec, cfg));
      flows.back()->start();
    }
  }
  sim.run_until(sim::seconds(4));

  // §III-D: the prior class takes what it can; the low class only gets the
  // residual — and with loss-based CC hammering a near-zero residual it is
  // driven close to starvation (the strict-priority hazard §IV-C-3's
  // ceiling template exists to prevent).
  const double g_hi = hi.mean_rate(10, 40).gbps();
  const double g_lo = lo.mean_rate(10, 40).gbps();
  EXPECT_GT(g_hi, 5.0);
  EXPECT_GT(g_hi, g_lo * 5.0);
}

}  // namespace
}  // namespace flowvalve
