// Tier-1 coverage for src/check: scenario generation is deterministic, the
// standard seed battery runs clean under every invariant checker, the
// differential oracle agrees with the reference HTB, and deliberately
// injected pipeline bugs ARE caught (a checker that never fires is
// worthless).
#include <gtest/gtest.h>

#include "check/fuzzer.h"
#include "check/runner.h"
#include "fault/fault.h"
#include "np/nic_pipeline.h"
#include "sim/simulator.h"

namespace flowvalve::check {
namespace {

// A permanent (never-clearing) injected pipeline bug, armed from t=0 via
// the fault plane — the checker-validation faults.
fault::FaultEvent permanent_bug(fault::FaultKind kind, std::uint64_t every) {
  fault::FaultEvent ev;
  ev.kind = kind;
  ev.at = 0;
  ev.duration = 0;
  ev.period = static_cast<sim::SimDuration>(every);
  return ev;
}

TEST(FuzzScenario, GenerationIsDeterministic) {
  for (std::uint64_t seed : {1ull, 7ull, 0xdeadbeefull}) {
    const FuzzScenario a = generate_scenario(seed);
    const FuzzScenario b = generate_scenario(seed);
    EXPECT_EQ(a.fv_script, b.fv_script);
    EXPECT_EQ(a.horizon, b.horizon);
    EXPECT_EQ(a.nic.num_workers, b.nic.num_workers);
    EXPECT_EQ(a.nic.enforce_reorder, b.nic.enforce_reorder);
    ASSERT_EQ(a.flows.size(), b.flows.size());
    for (std::size_t i = 0; i < a.flows.size(); ++i) {
      EXPECT_EQ(a.flows[i].kind, b.flows[i].kind);
      EXPECT_EQ(a.flows[i].start, b.flows[i].start);
      EXPECT_DOUBLE_EQ(a.flows[i].rate.bps(), b.flows[i].rate.bps());
    }
    EXPECT_EQ(a.describe(), b.describe());
  }
}

TEST(FuzzScenario, DifferentSeedsDiffer) {
  const FuzzScenario a = generate_scenario(1);
  const FuzzScenario b = generate_scenario(2);
  EXPECT_NE(a.describe(), b.describe());
}

TEST(FuzzScenario, ScenariosAreWellFormed) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const FuzzScenario sc = generate_scenario(seed);
    EXPECT_FALSE(sc.leaves.empty());
    EXPECT_FALSE(sc.flows.empty());
    EXPECT_GT(sc.horizon, 0);
    EXPECT_EQ(sc.nic.num_vfs, sc.leaves.size());
    for (const FuzzFlow& f : sc.flows) {
      EXPECT_LT(f.vf, sc.nic.num_vfs);
      EXPECT_LT(f.start, f.stop);
      EXPECT_LE(f.stop, sc.horizon);
      EXPECT_GT(f.rate.bps(), 0.0);
    }
  }
}

TEST(FuzzCheck, StandardSeedsRunClean) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const CheckReport report = run_seed(seed);
    EXPECT_TRUE(report.ok()) << report.summary() << "\n"
                             << (report.violations.empty()
                                     ? std::string()
                                     : report.violations.front().to_string());
    EXPECT_GT(report.nic.submitted, 0u) << report.summary();
    EXPECT_GT(report.nic.forwarded_to_wire, 0u) << report.summary();
  }
}

TEST(FuzzCheck, RunIsDeterministic) {
  const CheckReport a = run_seed(5);
  const CheckReport b = run_seed(5);
  EXPECT_EQ(a.nic.submitted, b.nic.submitted);
  EXPECT_EQ(a.nic.forwarded_to_wire, b.nic.forwarded_to_wire);
  EXPECT_EQ(a.nic.wire_bytes, b.nic.wire_bytes);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.delivered, b.delivered);
}

TEST(FuzzCheck, DifferentialOracleAgreesWithHtb) {
  RunOptions opts;
  opts.differential = true;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const CheckReport report = run_seed(seed, opts);
    EXPECT_TRUE(report.ok()) << report.summary() << "\n"
                             << (report.violations.empty()
                                     ? std::string()
                                     : report.violations.front().to_string());
    ASSERT_FALSE(report.fv_shares.empty());
    EXPECT_LT(report.worst_share_delta, opts.share_tolerance);
    // And both sides should sit near the closed-form weighted-fair shares.
    for (std::size_t i = 0; i < report.fv_shares.size(); ++i) {
      EXPECT_NEAR(report.fv_shares[i], report.expected_shares[i], 0.1);
      EXPECT_NEAR(report.ref_shares[i], report.expected_shares[i], 0.1);
    }
  }
}

// A pipeline bug that silently leaks packets (worker completes, packet never
// committed, no drop accounted) must be caught — conservation sees the
// missing packets at drain, ordering sees the stalled reorder window.
TEST(FuzzCheck, InjectedLeakIsCaught) {
  RunOptions opts;
  opts.faults.push_back(permanent_bug(fault::FaultKind::kLeakCommit, 97));
  const CheckReport report = run_seed(1, opts);
  ASSERT_FALSE(report.ok());
  bool conservation = false;
  for (const Violation& v : report.violations)
    if (v.checker == "conservation") conservation = true;
  EXPECT_TRUE(conservation) << "expected a conservation violation, got: "
                            << report.violations.front().to_string();
}

// A pipeline bug that lets packets jump the reorder queue must be caught by
// the per-VF ordering checker.
TEST(FuzzCheck, InjectedReorderBypassIsCaught) {
  RunOptions opts;
  opts.faults.push_back(permanent_bug(fault::FaultKind::kBypassReorder, 97));
  const CheckReport report = run_seed(1, opts);
  ASSERT_FALSE(report.ok());
  bool ordering = false;
  for (const Violation& v : report.violations)
    if (v.checker == "ordering") ordering = true;
  EXPECT_TRUE(ordering) << "expected an ordering violation, got: "
                        << report.violations.front().to_string();
}

// Config fuzzing: every generated invalid config must be rejected by
// NpConfig::validate() — and therefore by the NicPipeline constructor —
// before it can wedge or crash the pipeline (num_vfs == 0 used to be a
// modulo-by-zero in submit()).
TEST(FuzzCheck, GeneratedInvalidConfigsAreRejected) {
  sim::Simulator sim;
  np::NullProcessor proc;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const np::NpConfig cfg = generate_invalid_config(seed);
    EXPECT_THROW(cfg.validate(), std::invalid_argument) << "seed " << seed;
    EXPECT_THROW(np::NicPipeline(sim, cfg, proc), std::invalid_argument)
        << "seed " << seed;
  }
  // Determinism: the same seed expands to the same rejected config.
  const np::NpConfig a = generate_invalid_config(7);
  const np::NpConfig b = generate_invalid_config(7);
  EXPECT_EQ(a.num_workers, b.num_workers);
  EXPECT_EQ(a.num_vfs, b.num_vfs);
  EXPECT_EQ(a.vf_ring_capacity, b.vf_ring_capacity);
  EXPECT_EQ(a.tx_ring_capacity, b.tx_ring_capacity);
  EXPECT_DOUBLE_EQ(a.wire_rate.bps(), b.wire_rate.bps());
}

TEST(FuzzCheck, FaultFreeRerunOfFaultSeedIsClean) {
  // The failing seed minus the injected fault must be clean — proof the
  // violation came from the fault, not the scenario.
  const CheckReport report = run_seed(1);
  EXPECT_TRUE(report.ok()) << report.summary();
}

}  // namespace
}  // namespace flowvalve::check
