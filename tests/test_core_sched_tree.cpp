// Unit tests for the scheduling tree: structure, labels, validation, and the
// θ-derivation condition templates (paper Eq. 2/4/5/6 and §IV-C-3).
#include <gtest/gtest.h>

#include "core/sched_tree.h"

namespace flowvalve::core {
namespace {

using sim::Rate;

constexpr sim::SimTime kT0 = sim::milliseconds(100);

/// Mark a class active and give it a smoothed consumption rate Γ.
void force_gamma(SchedulingTree& tree, ClassId id, Rate gamma, sim::SimTime now) {
  SchedClass& c = tree.at(id);
  c.last_seen = now;
  c.ever_seen = true;
  // Saturate the EWMA with repeated observations.
  for (int i = 0; i < 64; ++i)
    c.gamma_bps.observe(now - sim::milliseconds(64 - i), gamma.bps());
}

struct MotivationTree {
  SchedulingTree tree;
  ClassId root, nc, s1, ws, s2, kvs, ml;

  explicit MotivationTree(FvParams params = {}) : tree(params) {
    root = tree.add_root("root", Rate::gigabits_per_sec(10));
    NodePolicy nc_pol;
    nc_pol.prio = 0;
    nc_pol.ceil = Rate::gigabits_per_sec(7.5);
    nc = tree.add_class("NC", root, nc_pol);
    NodePolicy s1_pol;
    s1_pol.prio = 1;
    s1 = tree.add_class("S1", root, s1_pol);
    NodePolicy ws_pol;  // weight 1
    ws = tree.add_class("WS", s1, ws_pol);
    NodePolicy s2_pol;
    s2_pol.weight = 2.0;
    s2 = tree.add_class("S2", s1, s2_pol);
    NodePolicy kvs_pol;
    kvs_pol.prio = 0;
    kvs = tree.add_class("KVS", s2, kvs_pol);
    NodePolicy ml_pol;
    ml_pol.prio = 1;
    ml_pol.guarantee = Rate::gigabits_per_sec(2);
    ml = tree.add_class("ML", s2, ml_pol);
    tree.finalize();
  }
};

TEST(SchedTree, StructureAndDepths) {
  MotivationTree m;
  EXPECT_EQ(m.tree.size(), 7u);
  EXPECT_TRUE(m.tree.at(m.root).is_root());
  EXPECT_EQ(m.tree.at(m.ml).depth, 3);
  EXPECT_EQ(m.tree.at(m.s1).depth, 1);
  EXPECT_TRUE(m.tree.at(m.ml).is_leaf());
  EXPECT_FALSE(m.tree.at(m.s2).is_leaf());
  EXPECT_EQ(m.tree.find("KVS"), m.kvs);
  EXPECT_EQ(m.tree.find("nope"), kNoClass);
}

TEST(SchedTree, LabelForBuildsRootToLeafPath) {
  MotivationTree m;
  const QosLabel label = m.tree.label_for(m.ml, {m.kvs, m.ws});
  ASSERT_EQ(label.path.size(), 4u);
  EXPECT_EQ(label.path.front(), m.root);
  EXPECT_EQ(label.path[1], m.s1);
  EXPECT_EQ(label.path[2], m.s2);
  EXPECT_EQ(label.path.back(), m.ml);
  EXPECT_EQ(label.borrow, (std::vector<ClassId>{m.kvs, m.ws}));
}

TEST(SchedTree, ValidateAcceptsGoodTree) {
  MotivationTree m;
  EXPECT_EQ(m.tree.validate(), "");
}

TEST(SchedTree, ValidateRejectsGuaranteeAboveCeil) {
  SchedulingTree tree;
  const auto root = tree.add_root("root", Rate::gigabits_per_sec(10));
  NodePolicy p;
  p.guarantee = Rate::gigabits_per_sec(5);
  p.ceil = Rate::gigabits_per_sec(2);
  tree.add_class("bad", root, p);
  EXPECT_NE(tree.validate().find("guarantee exceeds ceil"), std::string::npos);
}

TEST(SchedTree, FinalizeSeedsWeightedShares) {
  MotivationTree m;
  // Static seed: NC and S1 split 10G 1:1 at their level-ignorant seed, but
  // NC's share is capped only by ceil (7.5) — seed gives 5G each.
  EXPECT_NEAR(m.tree.at(m.s1).theta.gbps(), 5.0, 0.01);
  EXPECT_NEAR(m.tree.at(m.ws).theta.gbps(), 5.0 / 3.0, 0.01);
  EXPECT_NEAR(m.tree.at(m.s2).theta.gbps(), 10.0 / 3.0, 0.01);
}

// ---- θ derivation (compute_theta) ----------------------------------------

TEST(SchedTreeTheta, RootIsLinkRate) {
  MotivationTree m;
  EXPECT_NEAR(m.tree.compute_theta(m.root, kT0).gbps(), 10.0, 1e-9);
}

TEST(SchedTreeTheta, PriorityClassGetsFullParentCappedByCeil) {
  MotivationTree m;
  force_gamma(m.tree, m.nc, Rate::gigabits_per_sec(7.5), kT0);
  // NC is the top priority level: gets everything, capped at 7.5 ceil.
  EXPECT_NEAR(m.tree.compute_theta(m.nc, kT0).gbps(), 7.5, 0.01);
}

TEST(SchedTreeTheta, LowerLevelGetsResidual) {
  MotivationTree m;
  m.tree.at(m.root).theta = Rate::gigabits_per_sec(10);
  force_gamma(m.tree, m.nc, Rate::gigabits_per_sec(3), kT0);
  // Eq. 4: θ_S1 = θ_root − Γ_NC.
  EXPECT_NEAR(m.tree.compute_theta(m.s1, kT0).gbps(), 7.0, 0.05);
}

TEST(SchedTreeTheta, ResidualSubtractionCapsAtPriorTheta) {
  MotivationTree m;
  // NC consuming more than its ceiling-capped θ (e.g. via borrowing) must
  // not starve S1 below θ_parent − θ_NC.
  force_gamma(m.tree, m.nc, Rate::gigabits_per_sec(10), kT0);
  EXPECT_NEAR(m.tree.compute_theta(m.s1, kT0).gbps(), 2.5, 0.05);
}

TEST(SchedTreeTheta, ExpiredPriorClassReleasesEverything) {
  FvParams params;
  MotivationTree m(params);
  force_gamma(m.tree, m.nc, Rate::gigabits_per_sec(7.5), kT0);
  // Move past the expiry threshold with no further packets from NC.
  const sim::SimTime later = kT0 + params.expiry_threshold + sim::milliseconds(1);
  EXPECT_NEAR(m.tree.compute_theta(m.s1, later).gbps(), 10.0, 0.05);
}

TEST(SchedTreeTheta, WeightedSplitFollowsEq5) {
  MotivationTree m;
  m.tree.at(m.s1).theta = Rate::gigabits_per_sec(9);
  force_gamma(m.tree, m.ws, Rate::gigabits_per_sec(1), kT0);
  force_gamma(m.tree, m.s2, Rate::gigabits_per_sec(1), kT0);
  EXPECT_NEAR(m.tree.compute_theta(m.ws, kT0).gbps(), 3.0, 0.05);
  EXPECT_NEAR(m.tree.compute_theta(m.s2, kT0).gbps(), 6.0, 0.05);
}

TEST(SchedTreeTheta, WeightedShareIsStaticWhenSiblingIdle) {
  // Idle siblings do not inflate a weighted class's θ (their share is lent
  // through the shadow bucket instead — the Fig. 11(c) semantics).
  MotivationTree m;
  m.tree.at(m.s1).theta = Rate::gigabits_per_sec(9);
  force_gamma(m.tree, m.s2, Rate::gigabits_per_sec(1), kT0);
  // WS never seen → inactive; S2's θ stays its weighted share.
  EXPECT_NEAR(m.tree.compute_theta(m.s2, kT0).gbps(), 6.0, 0.05);
}

TEST(SchedTreeTheta, GuaranteeReservedWhenDemanded) {
  MotivationTree m;
  m.tree.at(m.s2).theta = Rate::gigabits_per_sec(6.33);
  force_gamma(m.tree, m.kvs, Rate::gigabits_per_sec(6), kT0);
  force_gamma(m.tree, m.ml, Rate::gigabits_per_sec(2.5), kT0);
  // ML demands above its guarantee: reservation = min(2, wshare) = 2,
  // KVS gets the rest.
  EXPECT_NEAR(m.tree.compute_theta(m.kvs, kT0).gbps(), 4.33, 0.1);
  EXPECT_NEAR(m.tree.compute_theta(m.ml, kT0).gbps(), 2.0, 0.1);
}

TEST(SchedTreeTheta, GuaranteeCrossoverBelowFourGbps) {
  // Paper §II: when vm1's total is below 4G, KVS and ML share 1:1 instead of
  // the guarantee binding (reservation = min(g, weighted share)).
  MotivationTree m;
  m.tree.at(m.s2).theta = Rate::gigabits_per_sec(3);
  force_gamma(m.tree, m.kvs, Rate::gigabits_per_sec(3), kT0);
  force_gamma(m.tree, m.ml, Rate::gigabits_per_sec(3), kT0);
  EXPECT_NEAR(m.tree.compute_theta(m.ml, kT0).gbps(), 1.5, 0.1);
  EXPECT_NEAR(m.tree.compute_theta(m.kvs, kT0).gbps(), 1.5, 0.1);
}

TEST(SchedTreeTheta, IdleGuaranteeDoesNotStrandBandwidth) {
  MotivationTree m;
  m.tree.at(m.s2).theta = Rate::gigabits_per_sec(6);
  force_gamma(m.tree, m.kvs, Rate::gigabits_per_sec(6), kT0);
  // ML inactive → no reservation → KVS gets everything.
  EXPECT_NEAR(m.tree.compute_theta(m.kvs, kT0).gbps(), 6.0, 0.05);
}

TEST(SchedTreeTheta, PriorClassReleaseFlowsToLowerLevel) {
  MotivationTree m;
  m.tree.at(m.s2).theta = Rate::gigabits_per_sec(6.33);
  force_gamma(m.tree, m.ml, Rate::gigabits_per_sec(2.5), kT0);
  // KVS inactive: ML absorbs the entire subtree rate.
  EXPECT_NEAR(m.tree.compute_theta(m.ml, kT0).gbps(), 6.33, 0.1);
}

// ---- update_class / lendable ----------------------------------------------

TEST(SchedTreeUpdate, ReplenishesBucketAtTheta) {
  MotivationTree m;
  SchedClass& ws = m.tree.at(m.ws);
  force_gamma(m.tree, m.ws, Rate::gigabits_per_sec(1), kT0);
  ws.bucket.reset(0);
  ws.last_update = kT0;
  m.tree.update_class(m.ws, kT0 + sim::microseconds(100));
  // θ_WS ≈ S1's θ/3; bucket gained θ·100µs.
  const double expected = m.tree.at(m.ws).theta.bytes_per_ns() * 100'000.0;
  EXPECT_NEAR(ws.bucket.tokens(), expected, expected * 0.05 + 1.0);
}

TEST(SchedTreeUpdate, GammaEvaluatedFromConsumedBytes) {
  MotivationTree m;
  SchedClass& ws = m.tree.at(m.ws);
  ws.last_update = kT0;
  ws.last_seen = kT0 + sim::microseconds(100);
  ws.ever_seen = true;
  ws.consumed_bytes = 125'000;  // over 100 µs → 10 Gbps instantaneous
  m.tree.update_class(m.ws, kT0 + sim::microseconds(100));
  EXPECT_GT(m.tree.at(m.ws).gamma().gbps(), 0.5);
  EXPECT_DOUBLE_EQ(m.tree.at(m.ws).consumed_bytes, 0.0);
}

TEST(SchedTreeUpdate, ExpiredStatusRestored) {
  FvParams params;
  MotivationTree m(params);
  force_gamma(m.tree, m.ws, Rate::gigabits_per_sec(3), kT0);
  SchedClass& ws = m.tree.at(m.ws);
  ws.last_update = kT0;
  const sim::SimTime later = kT0 + params.expiry_threshold + sim::milliseconds(5);
  m.tree.update_class(m.ws, later);
  EXPECT_DOUBLE_EQ(m.tree.at(m.ws).gamma().bps(), 0.0);  // Subprocedure 3
}

TEST(SchedTreeUpdate, LendableZeroForClassWithLowerPrioSibling) {
  MotivationTree m;
  // NC has the lower-priority sibling S1: its slack is redistributed via
  // Eq. 4, so its shadow must not lend (no double allocation).
  force_gamma(m.tree, m.nc, Rate::gigabits_per_sec(1), kT0);
  m.tree.at(m.nc).last_update = kT0 - sim::microseconds(100);
  m.tree.update_class(m.nc, kT0);
  EXPECT_DOUBLE_EQ(m.tree.at(m.nc).lendable.bps(), 0.0);
}

TEST(SchedTreeUpdate, LendableEqualsSlackForWeightedClass) {
  MotivationTree m;
  m.tree.at(m.s1).theta = Rate::gigabits_per_sec(9);
  force_gamma(m.tree, m.ws, Rate::gigabits_per_sec(1), kT0);
  m.tree.at(m.ws).last_update = kT0 - sim::microseconds(100);
  m.tree.update_class(m.ws, kT0);
  // θ_WS = 3, Γ ≈ 1 (decaying: no bytes consumed in the closing epoch)
  // → lendable ≈ 2-2.3 (Eq. 6).
  EXPECT_NEAR(m.tree.at(m.ws).lendable.gbps(), 2.15, 0.35);
}

TEST(SchedTreeUpdate, CountForwardedTouchesWholePath) {
  MotivationTree m;
  const QosLabel label = m.tree.label_for(m.ml);
  m.tree.count_forwarded(label.path, 1000);
  EXPECT_DOUBLE_EQ(m.tree.at(m.root).consumed_bytes, 1000.0);
  EXPECT_DOUBLE_EQ(m.tree.at(m.s2).consumed_bytes, 1000.0);
  EXPECT_DOUBLE_EQ(m.tree.at(m.ml).consumed_bytes, 1000.0);
  EXPECT_DOUBLE_EQ(m.tree.at(m.ws).consumed_bytes, 0.0);
  EXPECT_EQ(m.tree.at(m.ml).fwd_packets, 1u);
}

TEST(SchedTreeUpdate, TouchMarksActivity) {
  MotivationTree m;
  const QosLabel label = m.tree.label_for(m.kvs);
  EXPECT_FALSE(m.tree.is_active(m.tree.at(m.kvs), kT0));
  m.tree.touch(label.path, kT0);
  EXPECT_TRUE(m.tree.is_active(m.tree.at(m.kvs), kT0));
  EXPECT_TRUE(m.tree.is_active(m.tree.at(m.s2), kT0));
  EXPECT_FALSE(
      m.tree.is_active(m.tree.at(m.kvs), kT0 + m.tree.params().expiry_threshold + 1));
}

TEST(SchedTreeUpdate, FreezeThetaSkipsRecomputation) {
  FvParams params;
  params.freeze_theta = true;
  MotivationTree m(params);
  const Rate seeded = m.tree.at(m.s1).theta;
  force_gamma(m.tree, m.nc, Rate::gigabits_per_sec(7), kT0);
  m.tree.at(m.s1).last_update = kT0 - sim::milliseconds(1);
  m.tree.update_class(m.s1, kT0);
  EXPECT_EQ(m.tree.at(m.s1).theta, seeded);
}

// Property: across random weights, Eq. 5 shares are proportional and sum to
// the parent rate.
class WeightedSplit : public ::testing::TestWithParam<std::tuple<double, double, double>> {
};

TEST_P(WeightedSplit, SharesAreProportionalAndConservative) {
  auto [w1, w2, w3] = GetParam();
  SchedulingTree tree;
  const auto root = tree.add_root("root", Rate::gigabits_per_sec(30));
  NodePolicy p;
  p.weight = w1;
  const auto a = tree.add_class("a", root, p);
  p.weight = w2;
  const auto b = tree.add_class("b", root, p);
  p.weight = w3;
  const auto c = tree.add_class("c", root, p);
  tree.finalize();
  for (ClassId id : {a, b, c}) force_gamma(tree, id, Rate::gigabits_per_sec(1), kT0);

  const double ta = tree.compute_theta(a, kT0).gbps();
  const double tb = tree.compute_theta(b, kT0).gbps();
  const double tc = tree.compute_theta(c, kT0).gbps();
  EXPECT_NEAR(ta + tb + tc, 30.0, 0.01);
  EXPECT_NEAR(ta / tb, w1 / w2, 0.01 * (w1 / w2));
  EXPECT_NEAR(tb / tc, w2 / w3, 0.01 * (w2 / w3));
}

INSTANTIATE_TEST_SUITE_P(Weights, WeightedSplit,
                         ::testing::Values(std::tuple{1.0, 1.0, 1.0},
                                           std::tuple{1.0, 2.0, 3.0},
                                           std::tuple{5.0, 1.0, 4.0},
                                           std::tuple{0.5, 0.25, 0.25},
                                           std::tuple{10.0, 1.0, 1.0}));

}  // namespace
}  // namespace flowvalve::core

namespace flowvalve::core {
namespace {

TEST(SchedTreeReconfigure, WeightChangeShiftsShares) {
  MotivationTree m;
  m.tree.at(m.s1).theta = Rate::gigabits_per_sec(9);
  force_gamma(m.tree, m.ws, Rate::gigabits_per_sec(1), kT0);
  force_gamma(m.tree, m.s2, Rate::gigabits_per_sec(1), kT0);
  EXPECT_NEAR(m.tree.compute_theta(m.ws, kT0).gbps(), 3.0, 0.05);
  NodePolicy pol = m.tree.at(m.ws).policy;
  pol.weight = 2.0;  // now 2:2 with S2
  ASSERT_TRUE(m.tree.reconfigure(m.ws, pol));
  EXPECT_NEAR(m.tree.compute_theta(m.ws, kT0).gbps(), 4.5, 0.05);
  EXPECT_NEAR(m.tree.compute_theta(m.s2, kT0).gbps(), 4.5, 0.05);
}

TEST(SchedTreeReconfigure, RootRateChangeTakesEffectImmediately) {
  MotivationTree m;
  NodePolicy pol = m.tree.at(m.root).policy;
  pol.ceil = Rate::gigabits_per_sec(5);
  ASSERT_TRUE(m.tree.reconfigure(m.root, pol));
  EXPECT_NEAR(m.tree.at(m.root).theta.gbps(), 5.0, 1e-9);
  EXPECT_NEAR(m.tree.compute_theta(m.nc, kT0).gbps(), 5.0, 0.01);
}

TEST(SchedTreeReconfigure, RejectsInvalidPolicies) {
  MotivationTree m;
  NodePolicy bad;
  bad.weight = -1.0;
  EXPECT_FALSE(m.tree.reconfigure(m.ws, bad));
  NodePolicy bad2;
  bad2.guarantee = Rate::gigabits_per_sec(9);
  bad2.ceil = Rate::gigabits_per_sec(1);
  EXPECT_FALSE(m.tree.reconfigure(m.ws, bad2));
  EXPECT_FALSE(m.tree.reconfigure(9999, NodePolicy{}));
}

TEST(SchedTreeReconfigure, RejectsChildGuaranteesAboveParentCeil) {
  MotivationTree m;
  // NC + S1 guarantees would oversubscribe the root's 10G link ceiling.
  NodePolicy pol = m.tree.at(m.nc).policy;
  pol.guarantee = Rate::gigabits_per_sec(7);
  ASSERT_TRUE(m.tree.reconfigure(m.nc, pol));  // alone it fits under 10G
  NodePolicy pol2 = m.tree.at(m.s1).policy;
  pol2.guarantee = Rate::gigabits_per_sec(4);  // 7 + 4 > 10
  EXPECT_FALSE(m.tree.reconfigure(m.s1, pol2));
  // The rejected policy left the live one untouched.
  EXPECT_FALSE(m.tree.at(m.s1).policy.has_guarantee());
}

TEST(SchedTreeValidate, DeltasReportHumanReadableErrors) {
  MotivationTree m;
  NodePolicy bad = m.tree.at(m.ws).policy;
  bad.weight = -2.0;
  std::string err = m.tree.validate_deltas({{m.ws, bad}});
  EXPECT_NE(err.find("weight"), std::string::npos) << err;

  NodePolicy inverted = m.tree.at(m.ws).policy;
  inverted.guarantee = Rate::gigabits_per_sec(5);
  inverted.ceil = Rate::gigabits_per_sec(1);
  err = m.tree.validate_deltas({{m.ws, inverted}});
  EXPECT_NE(err.find("guarantee exceeds ceil"), std::string::npos) << err;

  // The sum check sees the whole manifest merged, not each delta alone:
  // NC (6G) + S1 (6G) together oversubscribe the root's 10G ceiling.
  NodePolicy g1 = m.tree.at(m.nc).policy;
  g1.guarantee = Rate::gigabits_per_sec(6);
  NodePolicy g2 = m.tree.at(m.s1).policy;
  g2.guarantee = Rate::gigabits_per_sec(6);
  err = m.tree.validate_deltas({{m.nc, g1}, {m.s1, g2}});
  EXPECT_NE(err.find("summing above the parent ceil"), std::string::npos) << err;

  EXPECT_EQ(m.tree.validate_deltas({{m.ws, m.tree.at(m.ws).policy}}), "");
}

TEST(SchedTreeStaging, StagedPolicyInvisibleUntilCommit) {
  MotivationTree m;
  NodePolicy pol = m.tree.at(m.ws).policy;
  pol.weight = 4.0;
  EXPECT_EQ(m.tree.policy_epoch(), 0u);
  EXPECT_FALSE(m.tree.rollout_active());

  const std::uint32_t staged = m.tree.stage({{m.ws, pol}});
  EXPECT_EQ(staged, 1u);
  EXPECT_TRUE(m.tree.rollout_active());
  EXPECT_EQ(m.tree.staged_remaining(), 1u);
  EXPECT_EQ(m.tree.policy_epoch(), 0u);            // committed epoch unchanged
  EXPECT_NEAR(m.tree.at(m.ws).policy.weight, 1.0, 1e-9);  // live policy too

  m.tree.commit_class(m.ws, kT0);
  EXPECT_NEAR(m.tree.at(m.ws).policy.weight, 4.0, 1e-9);
  EXPECT_EQ(m.tree.staged_remaining(), 0u);
  EXPECT_TRUE(m.tree.rollout_active());  // epoch advances only via commit_all

  m.tree.commit_all(kT0);
  EXPECT_EQ(m.tree.policy_epoch(), 1u);
  EXPECT_FALSE(m.tree.rollout_active());
}

TEST(SchedTreeStaging, AbandonStageRetractsCleanly) {
  MotivationTree m;
  NodePolicy pol = m.tree.at(m.ws).policy;
  pol.weight = 4.0;
  m.tree.stage({{m.ws, pol}});
  m.tree.abandon_stage();
  EXPECT_FALSE(m.tree.rollout_active());
  EXPECT_EQ(m.tree.staged_remaining(), 0u);
  EXPECT_EQ(m.tree.staged_epoch(), m.tree.policy_epoch());
  EXPECT_NEAR(m.tree.at(m.ws).policy.weight, 1.0, 1e-9);
  // A commit after abandoning is a no-op for the class.
  m.tree.commit_class(m.ws, kT0);
  EXPECT_NEAR(m.tree.at(m.ws).policy.weight, 1.0, 1e-9);
}

TEST(SchedTreeStaging, EpochsAreMonotonicAcrossRestage) {
  MotivationTree m;
  NodePolicy pol = m.tree.at(m.ws).policy;
  m.tree.stage({{m.ws, pol}});
  m.tree.commit_all(kT0);
  EXPECT_EQ(m.tree.policy_epoch(), 1u);
  // Rollback path: re-stage the prior policy — a NEW epoch, never a reuse.
  m.tree.stage({{m.ws, pol}});
  m.tree.commit_all(kT0);
  EXPECT_EQ(m.tree.policy_epoch(), 2u);
}

TEST(SchedTreeStaging, CommitRefreshesIdleSiblingTheta) {
  MotivationTree m;
  m.tree.at(m.s1).theta = Rate::gigabits_per_sec(9);
  force_gamma(m.tree, m.ws, Rate::gigabits_per_sec(1), kT0);
  force_gamma(m.tree, m.s2, Rate::gigabits_per_sec(1), kT0);
  // Give both siblings a pre-commit θ as the data path would.
  m.tree.at(m.ws).theta = m.tree.compute_theta(m.ws, kT0);
  m.tree.at(m.s2).theta = m.tree.compute_theta(m.s2, kT0);
  EXPECT_NEAR(m.tree.at(m.s2).theta.gbps(), 6.0, 0.05);  // 1:2 split of 9G

  NodePolicy pol = m.tree.at(m.ws).policy;
  pol.weight = 2.0;  // now 2:2
  m.tree.stage({{m.ws, pol}});
  m.tree.commit_class(m.ws, kT0);
  // S2 never ran update_class, yet its θ reflects the committed weights:
  // the commit sweep re-derives θ tree-wide (top-down — S1 itself refreshes
  // to the full 10G with NC idle) so idle siblings cannot keep scheduling
  // against the old split forever. 2:2 split of S1's refreshed 10G → 5G.
  EXPECT_NEAR(m.tree.at(m.s2).theta.gbps(), 5.0, 0.05);
  // And stale lendable can never exceed the freshly shrunk θ.
  EXPECT_LE(m.tree.at(m.s2).lendable.bps(), m.tree.at(m.s2).theta.bps() + 1);
}

TEST(SchedTreeReconfigure, GuaranteeCanBeAddedAtRuntime) {
  MotivationTree m;
  m.tree.at(m.s1).theta = Rate::gigabits_per_sec(9);
  force_gamma(m.tree, m.ws, Rate::gigabits_per_sec(5), kT0);
  force_gamma(m.tree, m.s2, Rate::gigabits_per_sec(5), kT0);
  NodePolicy pol = m.tree.at(m.ws).policy;
  pol.guarantee = Rate::gigabits_per_sec(2);
  ASSERT_TRUE(m.tree.reconfigure(m.ws, pol));
  // WS now reserves min(2, wshare=3): its θ ≥ 2 under contention... and the
  // sibling's available pool shrinks accordingly.
  const double ws_theta = m.tree.compute_theta(m.ws, kT0).gbps();
  EXPECT_GE(ws_theta, 2.0);
}

}  // namespace
}  // namespace flowvalve::core
