// Tier-1 coverage for the bucketized cuckoo flow table (DESIGN.md §14):
// the splitmix64 mixer's avalanche/distribution lock, constructor capacity
// clamping, the bounded BFS kick path, idle eviction amortized into
// lookups, integrity-tag poison detection, the poison × label-epoch ×
// eviction interleavings, the degraded-mode state machine's determinism,
// and the million-flow churn soak across every scheduler backend and both
// batch sizes with the cache-coherence checker armed.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "check/fuzzer.h"
#include "check/runner.h"
#include "core/classifier.h"
#include "net/packet.h"

namespace flowvalve::core {
namespace {

FiveTuple tuple_n(std::uint64_t serial) {
  FiveTuple t;
  t.src_ip = 0x0a000000u + static_cast<std::uint32_t>(serial >> 16);
  t.dst_ip = 0x0a0000ffu;
  t.src_port = static_cast<std::uint16_t>(serial & 0xFFFF);
  t.dst_port = 443;
  t.proto = IpProto::kTcp;
  return t;
}

// ---- splitmix64 mixer (the set-index distribution lock) -------------------

TEST(Mix64, FullAvalancheOnEveryInputBit) {
  // Flipping any single input bit must flip close to half the output bits.
  // The weak pre-cuckoo mix (hash ^ vf * 0x9e37) fails this immediately for
  // high input bits, which is exactly how VFs aliased into the same sets.
  const std::uint64_t bases[] = {0u, 1u, 0xdeadbeefu, 0x0123456789abcdefULL,
                                 ~0ULL};
  double total = 0.0;
  int samples = 0;
  for (std::uint64_t x : bases) {
    for (int bit = 0; bit < 64; ++bit) {
      const int flipped = std::popcount(
          ExactMatchFlowCache::mix64(x) ^
          ExactMatchFlowCache::mix64(x ^ (std::uint64_t{1} << bit)));
      EXPECT_GE(flipped, 12) << "base " << x << " bit " << bit;
      EXPECT_LE(flipped, 52) << "base " << x << " bit " << bit;
      total += flipped;
      ++samples;
    }
  }
  EXPECT_NEAR(total / samples, 32.0, 2.0);
}

TEST(Mix64, SequentialKeysSpreadEvenlyAcrossSets) {
  // Low-entropy sequential inputs (the serial-derived churn tuples) must
  // land uniformly in a power-of-two index space: 4096 keys over 1024
  // buckets should look Poisson(4), not clumped.
  constexpr std::size_t kBuckets = 1024;
  std::vector<std::uint32_t> count(kBuckets, 0);
  for (std::uint64_t i = 0; i < 4 * kBuckets; ++i)
    ++count[ExactMatchFlowCache::mix64(i) & (kBuckets - 1)];
  std::uint32_t worst = 0, empty = 0;
  for (std::uint32_t c : count) {
    worst = std::max(worst, c);
    empty += c == 0;
  }
  EXPECT_LE(worst, 20u);   // P(Poisson(4) > 20) ~ 1e-10 per bucket
  EXPECT_LE(empty, 60u);   // expected e^-4 * 1024 ~ 19 empty buckets
}

// ---- constructor capacity clamping ----------------------------------------

TEST(FlowTable, CapacityClampHandlesZeroAndOddSizes) {
  for (std::size_t requested : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                                std::size_t{3000}, std::size_t{4096}}) {
    ExactMatchFlowCache cache(
        ExactMatchFlowCache::Options{.capacity = requested});
    EXPECT_GE(cache.bucket_count(), 2u) << "requested " << requested;
    EXPECT_TRUE(std::has_single_bit(cache.bucket_count()))
        << "requested " << requested;
    EXPECT_EQ(cache.capacity(),
              cache.bucket_count() * ExactMatchFlowCache::kSlots);
    EXPECT_GE(cache.capacity(), requested) << "requested " << requested;
    // The clamped table must actually work, even when 0 was requested.
    cache.insert(1, tuple_n(7), 42, 1);
    EXPECT_EQ(cache.peek(1, tuple_n(7)), std::optional<ClassLabelId>(42));
  }
}

// ---- kick path ------------------------------------------------------------

TEST(FlowTable, KickPathRelocatesResidentsWithoutLoss) {
  // 16 buckets x 4 slots at load 0.875: direct slots run out, the BFS kick
  // path must relocate residents — and every key stays findable.
  ExactMatchFlowCache cache(ExactMatchFlowCache::Options{.capacity = 64});
  constexpr std::uint64_t kKeys = 56;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    const auto out = cache.insert(0, tuple_n(i), static_cast<ClassLabelId>(i), i);
    ASSERT_TRUE(out.inserted) << "key " << i;
  }
  EXPECT_GT(cache.stats().kicks, 0u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.size(), kKeys);
  for (std::uint64_t i = 0; i < kKeys; ++i)
    EXPECT_EQ(cache.peek(0, tuple_n(i)),
              std::optional<ClassLabelId>(static_cast<ClassLabelId>(i)))
        << "key " << i;
}

TEST(FlowTable, FullTablePressureEvictsStalestButNeverDegrades) {
  // 2 buckets x 4 slots, 64 inserts: kick failures at high load are honest
  // capacity pressure — stalest-entry eviction, no degraded transition.
  ExactMatchFlowCache cache(ExactMatchFlowCache::Options{.capacity = 8});
  for (std::uint64_t i = 0; i < 64; ++i)
    cache.insert(0, tuple_n(i), static_cast<ClassLabelId>(i), /*now_tick=*/i);
  EXPECT_GT(cache.stats().kick_failures, 0u);
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_EQ(cache.health(), ExactMatchFlowCache::Health::kHealthy);
  EXPECT_EQ(cache.stats().degraded_transitions, 0u);
  // The most recent insert survived the eviction fallback.
  EXPECT_TRUE(cache.peek(0, tuple_n(63)).has_value());
}

// ---- idle eviction --------------------------------------------------------

TEST(FlowTable, IdleEntriesReclaimedByAmortizedLookupSweep) {
  ExactMatchFlowCache cache(
      ExactMatchFlowCache::Options{.capacity = 64, .idle_timeout_ticks = 100});
  constexpr std::uint64_t kKeys = 16;
  for (std::uint64_t i = 0; i < kKeys; ++i)
    cache.insert(0, tuple_n(i), 1, /*now_tick=*/0);
  EXPECT_EQ(cache.size(), kKeys);
  // Each lookup sweeps one bucket; a full cursor revolution at a tick past
  // the timeout reclaims every idle entry without any explicit flush call.
  for (std::uint64_t i = 0; i < cache.bucket_count(); ++i)
    cache.lookup(9, tuple_n(1000 + i), /*now_tick=*/500);
  EXPECT_EQ(cache.stats().idle_evictions, kKeys);
  EXPECT_EQ(cache.size(), 0u);
  for (std::uint64_t i = 0; i < kKeys; ++i)
    EXPECT_FALSE(cache.peek(0, tuple_n(i)).has_value());
}

TEST(FlowTable, RecentlyTouchedEntriesSurviveTheSweep) {
  ExactMatchFlowCache cache(
      ExactMatchFlowCache::Options{.capacity = 64, .idle_timeout_ticks = 100});
  cache.insert(0, tuple_n(0), 1, /*now_tick=*/0);
  cache.insert(0, tuple_n(1), 2, /*now_tick=*/0);
  EXPECT_TRUE(cache.lookup(0, tuple_n(0), /*now_tick=*/450).has_value());
  for (std::uint64_t i = 0; i < cache.bucket_count(); ++i)
    cache.lookup(9, tuple_n(1000 + i), /*now_tick=*/500);
  EXPECT_TRUE(cache.peek(0, tuple_n(0)).has_value());   // touched at 450
  EXPECT_FALSE(cache.peek(0, tuple_n(1)).has_value());  // idle since 0
}

// ---- integrity tags and poison × epoch × eviction interleavings -----------

TEST(FlowTable, PoisonDetectedByIntegrityTagOnNextLookup) {
  ExactMatchFlowCache cache(1024);
  constexpr std::uint64_t kKeys = 8;
  for (std::uint64_t i = 0; i < kKeys; ++i)
    cache.insert(0, tuple_n(i), static_cast<ClassLabelId>(i % 4), 1);
  ASSERT_EQ(cache.poison(/*stride=*/1, /*label_count=*/4), kKeys);
  for (std::uint64_t i = 0; i < kKeys; ++i)
    EXPECT_FALSE(cache.lookup(0, tuple_n(i), 2).has_value())
        << "poisoned entry " << i << " served a label";
  EXPECT_EQ(cache.stats().corruption_detected, kKeys);
  // The slots were invalidated; reinsertion restores the fast path.
  cache.insert(0, tuple_n(0), 0, 3);
  EXPECT_EQ(cache.lookup(0, tuple_n(0), 4), std::optional<ClassLabelId>(0));
}

TEST(FlowTable, SilentPoisonServesWrongLabel) {
  // fix_tag recomputes the integrity tag over the corrupted label — the
  // undetectable case that exists to validate the cache-coherence checker.
  ExactMatchFlowCache cache(1024);
  cache.insert(0, tuple_n(0), 1, 1);
  ASSERT_EQ(cache.poison(1, /*label_count=*/4, /*fix_tag=*/true), 1u);
  const auto hit = cache.lookup(0, tuple_n(0), 2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 2u);  // (1 + 1) % 4 — silently wrong
  EXPECT_EQ(cache.stats().corruption_detected, 0u);
}

TEST(FlowTable, PoisonedEntryNeverSurvivesEpochBumpAsFreshHit) {
  // Interleaving: poison (silent, fix_tag) then a label-epoch bump. The
  // stale-epoch check must invalidate the entry before its (corrupted)
  // label can be served under the new epoch.
  ExactMatchFlowCache cache(1024);
  cache.insert(0, tuple_n(0), 1, 1, /*epoch=*/0);
  ASSERT_EQ(cache.poison(1, 4, /*fix_tag=*/true), 1u);
  EXPECT_FALSE(cache.lookup(0, tuple_n(0), 2, /*epoch=*/1).has_value());
  EXPECT_EQ(cache.stats().stale_invalidations, 1u);
  // And the other order — detectable poison, then bump: still never a hit.
  cache.insert(0, tuple_n(1), 1, 3, /*epoch=*/1);
  ASSERT_EQ(cache.poison(1, 4, /*fix_tag=*/false), 1u);
  EXPECT_FALSE(cache.lookup(0, tuple_n(1), 4, /*epoch=*/2).has_value());
  EXPECT_FALSE(cache.peek(0, tuple_n(1), /*epoch=*/2).has_value());
  // Re-inserting under the new epoch restores a correct fresh hit.
  cache.insert(0, tuple_n(1), 3, 5, /*epoch=*/2);
  EXPECT_EQ(cache.lookup(0, tuple_n(1), 6, /*epoch=*/2),
            std::optional<ClassLabelId>(3));
}

TEST(FlowTable, MutationStampAdvancesOnEveryMutationClass) {
  ExactMatchFlowCache cache(
      ExactMatchFlowCache::Options{.capacity = 64, .idle_timeout_ticks = 100});
  std::uint64_t stamp = cache.mutation_stamp();
  const auto advanced = [&] {
    const bool moved = cache.mutation_stamp() != stamp;
    stamp = cache.mutation_stamp();
    return moved;
  };
  cache.insert(0, tuple_n(0), 1, 1);
  EXPECT_TRUE(advanced()) << "insertion";
  cache.lookup(0, tuple_n(0), 2, /*epoch=*/1);  // stale-epoch invalidation
  EXPECT_TRUE(advanced()) << "stale invalidation";
  cache.insert(0, tuple_n(1), 1, 3);
  cache.poison(1, 4, /*fix_tag=*/false);
  stamp = cache.mutation_stamp();
  cache.lookup(0, tuple_n(1), 4);  // corruption detection
  EXPECT_TRUE(advanced()) << "corruption detection";
  cache.insert(0, tuple_n(2), 1, 5);
  stamp = cache.mutation_stamp();
  cache.invalidate_all();  // eviction storm
  EXPECT_TRUE(advanced()) << "eviction";
  cache.insert(0, tuple_n(3), 1, 6);
  stamp = cache.mutation_stamp();
  for (std::uint64_t i = 0; i < cache.bucket_count(); ++i)
    cache.lookup(9, tuple_n(1000 + i), /*now_tick=*/500);  // idle sweep
  EXPECT_TRUE(advanced()) << "idle eviction";
  cache.clear();
  EXPECT_TRUE(advanced()) << "clear";
}

TEST(ClassifierRepeat, ReplayGuardRefusesAfterMidBurstEviction) {
  // The batched data path replays a burst-first classification only while
  // repeat_would_hit() holds AND the mutation stamp is unchanged. Any
  // eviction between the packets of one burst must break the guard.
  Classifier c;
  FilterRule r;
  r.pref = 10;
  r.label = 7;
  c.add_rule(r);
  net::Packet p;
  p.vf_port = 0;
  p.tuple = tuple_n(0);
  const auto first = c.classify(p, 1);
  ASSERT_TRUE(first.resident);
  ASSERT_TRUE(c.repeat_would_hit(first));
  const std::uint64_t stamp = c.cache().mutation_stamp();

  // Mid-burst eviction: the entry the replay would have trusted is gone.
  ASSERT_GT(c.cache_for_fault().invalidate_all(), 0u);
  EXPECT_NE(c.cache().mutation_stamp(), stamp)
      << "eviction must advance the stamp or the replay serves a dead entry";

  // The fallback classify() reinstates the entry and the guard re-arms.
  const auto again = c.classify(p, 2);
  EXPECT_EQ(again.label, 7u);
  EXPECT_TRUE(again.resident);
  EXPECT_TRUE(c.repeat_would_hit(again));
}

TEST(ClassifierRepeat, SuppressedInsertLeavesNoReplayableResult) {
  // While degraded the miss path cannot admit the entry, so the first
  // result must not claim residency — repeat_would_hit() is the gate.
  ExactMatchFlowCache::Options opt;
  opt.capacity = 4096;
  opt.degrade_threshold = 4;
  Classifier c(ClassifierCosts{}, opt);
  FilterRule r;
  r.pref = 10;
  r.label = 7;
  c.add_rule(r);
  c.cache_for_fault().fault_collision_storm(/*seed=*/42, /*n=*/64,
                                            /*now_tick=*/1);
  ASSERT_EQ(c.cache().health(), ExactMatchFlowCache::Health::kDegraded);
  net::Packet p;
  p.vf_port = 0;
  p.tuple = tuple_n(0);
  const auto first = c.classify(p, 2);
  EXPECT_EQ(first.label, 7u);  // rule walk still labels correctly
  EXPECT_FALSE(first.resident);
  EXPECT_FALSE(c.repeat_would_hit(first));
}

// ---- degraded-mode state machine ------------------------------------------

ExactMatchFlowCache::Options small_degrade_options() {
  ExactMatchFlowCache::Options opt;
  opt.capacity = 1024;
  opt.degrade_threshold = 4;
  opt.relapse_threshold = 2;
  opt.failure_score_cap = 8;
  opt.decay_interval_lookups = 4;
  opt.min_degraded_dwell = 16;
  opt.recovery_admit_every = 4;
  opt.recovery_clean_lookups = 16;
  return opt;
}

/// Drive one full degrade → recover → heal lifecycle and return the stats.
ExactMatchFlowCache::Stats run_degrade_lifecycle() {
  ExactMatchFlowCache cache(small_degrade_options());

  // Collision storm at low load: kick failures raise the pressure score
  // past the threshold and the admission gate closes.
  cache.fault_collision_storm(/*seed=*/42, /*n=*/32, /*now_tick=*/1);
  EXPECT_EQ(cache.health(), ExactMatchFlowCache::Health::kDegraded);
  EXPECT_EQ(cache.stats().degraded_transitions, 1u);

  // All inserts are suppressed while degraded — and lookups still work.
  EXPECT_FALSE(cache.insert(0, tuple_n(0), 1, 2).inserted);
  EXPECT_GT(cache.stats().suppressed_inserts, 0u);

  // The lookup stream decays the score and serves the dwell: after enough
  // quiet lookups the gate reopens partially (kRecovering).
  std::uint64_t tick = 10;
  while (cache.health() == ExactMatchFlowCache::Health::kDegraded) {
    cache.lookup(0, tuple_n(9999), tick++);
    if (tick >= 10'000) {
      ADD_FAILURE() << "degraded mode never released";
      break;
    }
  }
  EXPECT_EQ(cache.health(), ExactMatchFlowCache::Health::kRecovering);

  // Recovering admits 1-in-recovery_admit_every inserts (hysteresis, not a
  // reopened floodgate).
  std::uint64_t admitted = 0;
  for (std::uint64_t i = 0; i < 8; ++i)
    admitted += cache.insert(0, tuple_n(100 + i), 1, tick++).inserted;
  EXPECT_EQ(admitted, 2u);

  // A clean lookup run completes the recovery; admission is full again.
  while (cache.health() == ExactMatchFlowCache::Health::kRecovering) {
    cache.lookup(0, tuple_n(9999), tick++);
    if (tick >= 10'000) {
      ADD_FAILURE() << "recovery never completed";
      break;
    }
  }
  EXPECT_EQ(cache.health(), ExactMatchFlowCache::Health::kHealthy);
  EXPECT_TRUE(cache.insert(0, tuple_n(200), 1, tick).inserted);
  // No flush anywhere in the lifecycle: entries survived degradation.
  EXPECT_GT(cache.size(), 0u);
  return cache.stats();
}

TEST(FlowTable, DegradedLifecycleEngagesAndDisengagesDeterministically) {
  const ExactMatchFlowCache::Stats a = run_degrade_lifecycle();
  const ExactMatchFlowCache::Stats b = run_degrade_lifecycle();
  EXPECT_EQ(a.degraded_transitions, b.degraded_transitions);
  EXPECT_EQ(a.degraded_dwell_lookups, b.degraded_dwell_lookups);
  EXPECT_EQ(a.recovering_dwell_lookups, b.recovering_dwell_lookups);
  EXPECT_EQ(a.suppressed_inserts, b.suppressed_inserts);
  EXPECT_EQ(a.kick_failures, b.kick_failures);
  EXPECT_EQ(a.kicks, b.kicks);
  EXPECT_EQ(a.insertions, b.insertions);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_GT(a.degraded_dwell_lookups, 0u);
  EXPECT_GT(a.recovering_dwell_lookups, 0u);
}

TEST(FlowTable, RelapseDuringRecoveryReclosesTheGate) {
  ExactMatchFlowCache cache(small_degrade_options());
  cache.fault_collision_storm(42, 32, 1);
  ASSERT_EQ(cache.health(), ExactMatchFlowCache::Health::kDegraded);
  std::uint64_t tick = 10;
  while (cache.health() == ExactMatchFlowCache::Health::kDegraded)
    cache.lookup(0, tuple_n(9999), tick++);
  ASSERT_EQ(cache.health(), ExactMatchFlowCache::Health::kRecovering);
  // The storm resumes: a lower relapse threshold closes the gate again.
  // (It must be larger than the first — while recovering, the admission
  // gate already swallows 3 of every 4 storm keys before they can fail.)
  cache.fault_collision_storm(43, 128, tick);
  EXPECT_EQ(cache.health(), ExactMatchFlowCache::Health::kDegraded);
  EXPECT_EQ(cache.stats().degraded_transitions, 2u);
}

}  // namespace
}  // namespace flowvalve::core

// ---- million-flow churn soak ----------------------------------------------

namespace flowvalve::check {
namespace {

/// The acceptance soak: a fuzz scenario carrying a 10^6-concurrently-live
/// churn workload, both storm kinds over the middle half, every scheduler
/// backend, batch 1 and 32 — all invariant checkers armed, including the
/// cache-coherence checker (every EMC hit replayed against the rule walk).
TEST(ChurnSoak, MillionLiveFlowsSurviveStormsOnEveryBackendAndBatch) {
  FuzzScenario sc = generate_scenario(0x50AC);
  sc.nic.emc_capacity = std::size_t{1} << 21;
  FuzzFlow churn;
  churn.kind = FuzzFlow::Kind::kChurn;
  churn.live_flows = 1'000'000;
  churn.rate = sc.link_rate * 0.3;
  churn.frame_bytes = 1518;
  churn.start = 0;
  churn.stop = sc.horizon;
  sc.flows.push_back(churn);

  for (core::BackendKind backend :
       {core::BackendKind::kFlowValve, core::BackendKind::kStfq,
        core::BackendKind::kEiffel, core::BackendKind::kSpPifo}) {
    for (unsigned batch : {1u, 32u}) {
      RunOptions opts;
      opts.backend = backend;
      opts.batch_size = batch;
      opts.storm_collision = true;
      opts.storm_churn = true;
      const CheckReport report = run_scenario(sc, opts);
      EXPECT_TRUE(report.ok())
          << core::backend_kind_name(backend) << " batch " << batch << ": "
          << report.summary() << "\n"
          << (report.violations.empty()
                  ? std::string("(none stored)")
                  : report.violations.front().to_string());
      EXPECT_GT(report.delivered, 0u)
          << core::backend_kind_name(backend) << " batch " << batch;
    }
  }
}

}  // namespace
}  // namespace flowvalve::check
