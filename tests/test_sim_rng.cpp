// Unit tests for the deterministic RNG and its stream splitting.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/rng.h"

namespace flowvalve::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitByNameIsStable) {
  Rng root(7);
  Rng a1 = root.split("tcp");
  Rng a2 = Rng(7).split("tcp");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a1.next_u64(), a2.next_u64());
}

TEST(Rng, SplitStreamsAreIndependentOfDrawOrder) {
  // Drawing from the parent must not perturb a child stream.
  Rng root(9);
  Rng child_before = root.split("x");
  root.next_u64();
  root.next_u64();
  Rng child_after = root.split("x");
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child_before.next_u64(), child_after.next_u64());
}

TEST(Rng, DifferentSplitNamesDiffer) {
  Rng root(9);
  Rng a = root.split("a");
  Rng b = root.split("b");
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LE(same, 1);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(7), 7u);
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(13);
  int counts[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, UniformRange) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(3.0, 5.0);
    ASSERT_GE(v, 3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, NormalMoments) {
  Rng rng(29);
  const int n = 50000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.15);
}

TEST(Rng, ChanceProbability) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NoShortCycles) {
  Rng rng(37);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) EXPECT_TRUE(seen.insert(rng.next_u64()).second);
}

}  // namespace
}  // namespace flowvalve::sim
