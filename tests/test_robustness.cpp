// Robustness and failure-injection tests: connection sweeps, flow churn
// against the flow cache, bursty on/off traffic, ring overflow pressure,
// and mid-run policy stress.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "ctrl/reconfig_manager.h"
#include "exp/scenarios.h"
#include "host/probes.h"
#include "obs/reconfig_tracker.h"
#include "np/flowvalve_processor.h"
#include "np/nic_pipeline.h"
#include "sim/simulator.h"
#include "traffic/app.h"
#include "traffic/generators.h"

namespace flowvalve {
namespace {

using sim::Rate;

// The paper varies 4..256 connections per process and reports unchanged
// shares (§V-A). Sweep a few counts and assert the fair split holds.
class Fig11bConnectionSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(Fig11bConnectionSweep, SharesIndependentOfConnectionCount) {
  auto r = exp::run_fig11b_fair_queueing(/*seed=*/5, sim::seconds(16), GetParam());
  // Two active apps by t=10: both ≈ 20G regardless of connection count.
  EXPECT_NEAR(r.mean_rate("App0", 13, 16).gbps(), 20.0, 2.0);
  EXPECT_NEAR(r.mean_rate("App1", 13, 16).gbps(), 20.0, 2.0);
}

INSTANTIATE_TEST_SUITE_P(Conns, Fig11bConnectionSweep,
                         ::testing::Values(1u, 4u, 16u, 64u));

// Different processes maintaining *different* connection counts must still
// split by class, not by flow count (multi-queue isolation, Observation 3).
TEST(Robustness, AsymmetricConnectionCountsStillClassFair) {
  sim::Simulator sim;
  np::NpConfig nic = np::agilio_cx_40g();
  core::FlowValveEngine engine(exp::superpacket_engine_options(nic));
  ASSERT_EQ(engine.configure(
                exp::fair_queueing_script(Rate::gigabits_per_sec(40), 2)),
            "");
  np::FlowValveProcessor proc(engine);
  np::NicPipeline pipeline(sim, nic, proc);
  sim::Rng rng(6);
  traffic::IdAllocator ids;
  traffic::FlowRouter router(pipeline);
  stats::ThroughputSeries s0(sim::milliseconds(100)), s1(sim::milliseconds(100));
  router.track_app(0, &s0);
  router.track_app(1, &s1);

  traffic::AppConfig a;
  a.name = "many";
  a.app_id = 0;
  a.vf_port = 0;
  a.num_connections = 32;  // 32 flows
  a.wire_bytes = exp::kSuperPacketBytes;
  a.tcp.max_rate = Rate::gigabits_per_sec(56);
  a.tcp.additive_increase = Rate::megabits_per_sec(800);
  a.tcp.md_factor = 0.9;
  traffic::AppConfig b = a;
  b.name = "few";
  b.app_id = 1;
  b.vf_port = 1;
  b.num_connections = 2;  // 2 flows
  traffic::AppProcess app_many(sim, router, ids, a, rng.split("many"));
  traffic::AppProcess app_few(sim, router, ids, b, rng.split("few"));
  app_many.start();
  app_few.start();
  sim.run_until(sim::seconds(6));
  const auto bins = [&](const stats::ThroughputSeries& s) {
    return s.mean_rate(30, 60).gbps();  // 3..6 s
  };
  // 32 flows vs 2 flows: classes still split ~20/20 (±15%).
  EXPECT_NEAR(bins(s0), 20.0, 3.0);
  EXPECT_NEAR(bins(s1), 20.0, 3.0);
}

// Flow churn: thousands of short-lived flows stress the exact-match cache
// (evictions) without breaking classification or scheduling.
TEST(Robustness, FlowChurnThroughTinyCache) {
  core::FlowValveEngine::Options opt;
  opt.classifier_costs = {};
  core::FlowValveEngine engine(opt);
  // Note: cache capacity is fixed at engine construction; use the default
  // classifier but hammer it with far more flows than one set holds.
  ASSERT_EQ(engine.configure(exp::fair_queueing_script(Rate::gigabits_per_sec(40), 4)),
            "");
  std::uint64_t forwarded = 0;
  sim::Rng rng(7);
  for (int i = 0; i < 200000; ++i) {
    net::Packet p;
    p.vf_port = static_cast<std::uint16_t>(i % 4);
    p.wire_bytes = 200;
    p.tuple.src_ip = static_cast<std::uint32_t>(rng.next_below(500000));
    p.tuple.src_port = static_cast<std::uint16_t>(rng.next_below(60000));
    p.tuple.dst_port = 80;
    const auto r = engine.process(p, i * 2000);
    forwarded += r.verdict == core::Verdict::kForward;
  }
  // Low offered rate (0.88 Gbps) → everything forwards despite churn.
  EXPECT_GT(static_cast<double>(forwarded) / 200000.0, 0.99);
  const auto& cache = engine.classifier().cache().stats();
  EXPECT_GT(cache.insertions, 1000u);
}

// Bursty on/off traffic: FlowValve must not leak tokens across long OFF
// gaps (expiry resets) nor starve the burst on return.
TEST(Robustness, OnOffBurstsConformLongRun) {
  sim::Simulator sim;
  np::NpConfig nic = np::agilio_cx_40g();
  core::FlowValveEngine engine(np::engine_options_for(nic));
  ASSERT_EQ(engine.configure(
                "fv qdisc add dev nic0 root handle 1: htb rate 4gbit\n"
                "fv class add dev nic0 parent 1: classid 1:10 name bursty weight 1\n"
                "fv class add dev nic0 parent 1: classid 1:11 name steady weight 1\n"
                "fv filter add dev nic0 pref 1 vf 0 classid 1:10\n"
                "fv filter add dev nic0 pref 2 vf 1 classid 1:11\n"),
            "");
  np::FlowValveProcessor proc(engine);
  np::NicPipeline pipeline(sim, nic, proc);
  sim::Rng rng(8);
  traffic::IdAllocator ids;
  traffic::FlowRouter router(pipeline);
  stats::ThroughputSeries sb(sim::milliseconds(50)), ss(sim::milliseconds(50));
  router.track_app(0, &sb);
  router.track_app(1, &ss);

  traffic::FlowSpec bspec;
  bspec.flow_id = ids.next_flow_id();
  bspec.app_id = 0;
  bspec.vf_port = 0;
  bspec.wire_bytes = 1518;
  traffic::OnOffFlow bursty(sim, router, ids, bspec, Rate::gigabits_per_sec(6),
                            sim::milliseconds(20), sim::milliseconds(60), rng.split(1));
  traffic::FlowSpec sspec = bspec;
  sspec.flow_id = ids.next_flow_id();
  sspec.app_id = 1;
  sspec.vf_port = 1;
  traffic::CbrFlow steady(sim, router, ids, sspec, Rate::gigabits_per_sec(1.5),
                          rng.split(2), 0.02);
  bursty.start();
  steady.start();
  sim.run_until(sim::seconds(4));
  // Steady class (under its 2G share) is untouched by the bursts.
  EXPECT_NEAR(ss.mean_rate(10, 80).gbps(), 1.5, 0.1);
  // Bursty class long-run average stays below its share + borrowable slack.
  EXPECT_LT(sb.mean_rate(10, 80).gbps(), 2.6);
}

// VF ring overflow under a hopeless overload does not corrupt accounting.
TEST(Robustness, OverloadAccountingConsistent) {
  sim::Simulator sim;
  np::NpConfig nic = np::agilio_cx_40g();
  nic.vf_ring_capacity = 64;
  core::FlowValveEngine engine(np::engine_options_for(nic));
  ASSERT_EQ(engine.configure(exp::fair_queueing_script(nic.wire_rate, 4)), "");
  np::FlowValveProcessor proc(engine);
  np::NicPipeline pipeline(sim, nic, proc);
  traffic::IdAllocator ids;
  traffic::FlowRouter router(pipeline);
  host::SaturationLoad::Config cfg;
  cfg.wire_bytes = 64;
  cfg.offered = Rate::gigabits_per_sec(40);
  host::SaturationLoad load(sim, router, ids, cfg, sim::Rng(9));
  load.start();
  sim.run_until(sim::milliseconds(30));
  load.stop();
  sim.run_until(sim::milliseconds(40));
  const auto& st = pipeline.stats();
  EXPECT_EQ(st.submitted, st.vf_ring_drops + st.scheduler_drops + st.tx_ring_drops +
                              st.forwarded_to_wire);
  EXPECT_EQ(pipeline.in_flight(), 0u);
}

// Live policy reconfiguration under load, with a worker stall injected in
// the middle of the swap: the staged rollout must still commit and the
// delivered shares must converge to the NEW weights — not the old ones and
// not some torn mixture (DESIGN.md §11 degradation guarantees).
TEST(Robustness, LiveSwapUnderFaultConvergesToNewShares) {
  sim::Simulator sim;
  np::NpConfig nic = np::agilio_cx_40g();
  nic.num_workers = 8;
  nic.wire_rate = Rate::gigabits_per_sec(10);
  core::FlowValveEngine engine(np::engine_options_for(nic));
  ASSERT_EQ(engine.configure(
                "fv qdisc add dev nic0 root handle 1: htb rate 10gbit\n"
                "fv class add dev nic0 parent 1: classid 1:10 name gold weight 1\n"
                "fv class add dev nic0 parent 1: classid 1:11 name silver weight 1\n"
                "fv filter add dev nic0 pref 1 vf 0 classid 1:10\n"
                "fv filter add dev nic0 pref 2 vf 1 classid 1:11\n"),
            "");
  np::FlowValveProcessor proc(engine);
  np::NicPipeline pipeline(sim, nic, proc);
  traffic::IdAllocator ids;
  traffic::FlowRouter router(pipeline);
  stats::ThroughputSeries gold_s(sim::milliseconds(100));
  stats::ThroughputSeries silver_s(sim::milliseconds(100));
  router.track_app(0, &gold_s);
  router.track_app(1, &silver_s);

  obs::ReconfigTracker tracker;
  ctrl::ReconfigManager mgr(sim, pipeline, engine, &tracker);

  sim::Rng rng(21);
  std::vector<std::unique_ptr<traffic::CbrFlow>> flows;
  for (unsigned i = 0; i < 2; ++i) {
    traffic::FlowSpec fs;
    fs.flow_id = ids.next_flow_id();
    fs.app_id = i;
    fs.vf_port = static_cast<std::uint16_t>(i);
    fs.wire_bytes = 1500;
    flows.push_back(std::make_unique<traffic::CbrFlow>(
        sim, router, ids, fs, Rate::gigabits_per_sec(8), rng.split(i), 0.05));
  }
  for (auto& f : flows) f->start();

  // Mid-run swap to a 3:1 split, with a worker stalling right as the
  // rollout's cutover waves are in flight.
  sim.schedule_at(sim::seconds(3), [&] {
    ctrl::PolicyDelta d;
    d.class_name = "gold";
    d.weight = 3.0;
    ctrl::PolicyUpdate u;
    u.deltas.push_back(std::move(d));
    EXPECT_EQ(mgr.apply(u), "");
  });
  sim.schedule_at(sim::seconds(3), [&] {
    pipeline.fault_stall_worker(0, sim::milliseconds(5));
  });

  sim.run_until(sim::seconds(6));
  for (auto& f : flows) f->stop();
  sim.run_all();

  EXPECT_EQ(mgr.stats().committed, 1u);
  EXPECT_EQ(mgr.stats().rolled_back, 0u);
  // Before the swap (1..3 s): even split of the 10G link.
  EXPECT_NEAR(gold_s.mean_rate(10, 30).gbps(), 5.0, 0.8);
  EXPECT_NEAR(silver_s.mean_rate(10, 30).gbps(), 5.0, 0.8);
  // After the swap settles (4..6 s): the NEW 3:1 split.
  EXPECT_NEAR(gold_s.mean_rate(40, 60).gbps(), 7.5, 0.8);
  EXPECT_NEAR(silver_s.mean_rate(40, 60).gbps(), 2.5, 0.8);
}

// The same live swap is bit-reproducible: two runs with identical seed and
// schedule produce identical wire traces and reconfiguration timelines.
TEST(Robustness, LiveSwapIsDeterministic) {
  auto run = [] {
    sim::Simulator sim;
    np::NpConfig nic = np::agilio_cx_40g();
    nic.num_workers = 8;
    nic.wire_rate = Rate::gigabits_per_sec(10);
    core::FlowValveEngine engine(np::engine_options_for(nic));
    EXPECT_EQ(engine.configure(
                  "fv qdisc add dev nic0 root handle 1: htb rate 10gbit\n"
                  "fv class add dev nic0 parent 1: classid 1:10 name gold weight 1\n"
                  "fv class add dev nic0 parent 1: classid 1:11 name silver weight 1\n"
                  "fv filter add dev nic0 pref 1 vf 0 classid 1:10\n"
                  "fv filter add dev nic0 pref 2 vf 1 classid 1:11\n"),
              "");
    np::FlowValveProcessor proc(engine);
    np::NicPipeline pipeline(sim, nic, proc);
    traffic::IdAllocator ids;
    traffic::FlowRouter router(pipeline);
    obs::ReconfigTracker tracker;
    ctrl::ReconfigManager mgr(sim, pipeline, engine, &tracker);
    sim::Rng rng(33);
    std::vector<std::unique_ptr<traffic::CbrFlow>> flows;
    for (unsigned i = 0; i < 2; ++i) {
      traffic::FlowSpec fs;
      fs.flow_id = ids.next_flow_id();
      fs.app_id = i;
      fs.vf_port = static_cast<std::uint16_t>(i);
      fs.wire_bytes = 1500;
      flows.push_back(std::make_unique<traffic::CbrFlow>(
          sim, router, ids, fs, Rate::gigabits_per_sec(8), rng.split(i), 0.05));
    }
    for (auto& f : flows) f->start();
    sim.schedule_at(sim::milliseconds(500), [&] {
      ctrl::PolicyDelta d;
      d.class_name = "silver";
      d.weight = 2.0;
      ctrl::PolicyUpdate u;
      u.deltas.push_back(std::move(d));
      mgr.apply(u);
    });
    sim.run_until(sim::seconds(1));
    for (auto& f : flows) f->stop();
    sim.run_all();
    const auto& r = tracker.records();
    return std::make_tuple(pipeline.stats().forwarded_to_wire,
                           pipeline.stats().wire_bytes, sim.events_executed(),
                           r.empty() ? sim::SimTime(-2) : r[0].committed_at,
                           mgr.stats().mixed_epoch_packets);
  };
  EXPECT_EQ(run(), run());
}

// Determinism under churn: the full robustness scenario is reproducible.
TEST(Robustness, ChurnIsDeterministic) {
  auto run = [] {
    auto r = exp::run_fig11c_weighted_fq(/*seed=*/11, sim::seconds(5));
    std::uint64_t total = 0;
    for (const auto& app : r.apps) total += app.series->total_bytes();
    return total;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace flowvalve
