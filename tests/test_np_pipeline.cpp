// Unit tests for the simulated NP SmartNIC pipeline.
#include <gtest/gtest.h>

#include "np/flowvalve_processor.h"
#include "sim/rng.h"
#include "np/nic_pipeline.h"
#include "sim/simulator.h"

namespace flowvalve::np {
namespace {

using sim::Rate;

net::Packet packet_on(std::uint16_t vf, std::uint32_t bytes = 1518,
                      std::uint64_t id = 0) {
  net::Packet p;
  p.id = id;
  p.vf_port = vf;
  p.flow_id = vf;
  p.wire_bytes = bytes;
  return p;
}

/// Processor that drops every Nth packet with a fixed cycle cost.
class DropEveryN final : public PacketProcessor {
 public:
  DropEveryN(unsigned n, std::uint32_t cycles) : n_(n), cycles_(cycles) {}
  Outcome process(net::Packet&, sim::SimTime) override {
    ++count_;
    return {count_ % n_ != 0, cycles_};
  }

 private:
  unsigned n_;
  std::uint32_t cycles_;
  unsigned count_ = 0;
};

TEST(NpConfigTest, CycleConversionAndPeakPps) {
  NpConfig cfg;
  cfg.freq_ghz = 1.2;
  EXPECT_EQ(cfg.cycles_to_ns(1200), 1000);
  cfg.num_workers = 50;
  EXPECT_NEAR(cfg.peak_pps(3000) / 1e6, 20.0, 0.01);
}

TEST(NpConfigTest, Presets) {
  EXPECT_DOUBLE_EQ(agilio_cx_40g().wire_rate.gbps(), 40.0);
  EXPECT_DOUBLE_EQ(agilio_cx_10g().wire_rate.gbps(), 10.0);
  EXPECT_GT(agilio_cx_40g().fixed_pipeline_delay, agilio_cx_10g().fixed_pipeline_delay);
}

TEST(NicPipelineTest, ForwardsWithTimestamps) {
  sim::Simulator sim;
  NpConfig cfg = agilio_cx_40g();
  NullProcessor proc;
  NicPipeline pipe(sim, cfg, proc);
  net::Packet seen;
  int delivered = 0;
  pipe.set_on_delivered([&](const net::Packet& p) {
    seen = p;
    ++delivered;
  });
  pipe.submit(packet_on(0, 1518, 42));
  sim.run_until(sim::milliseconds(1));
  ASSERT_EQ(delivered, 1);
  EXPECT_EQ(seen.id, 42u);
  EXPECT_GE(seen.tx_enqueue, seen.nic_arrival);
  EXPECT_GT(seen.wire_tx_done, seen.tx_enqueue);
  EXPECT_EQ(seen.delivered_at, seen.wire_tx_done + cfg.fixed_pipeline_delay);
}

TEST(NicPipelineTest, WireSerializationPacesOutput) {
  sim::Simulator sim;
  NpConfig cfg = agilio_cx_40g();
  NullProcessor proc;
  NicPipeline pipe(sim, cfg, proc);
  std::vector<sim::SimTime> tx_done;
  pipe.set_on_delivered([&](const net::Packet& p) { tx_done.push_back(p.wire_tx_done); });
  for (int i = 0; i < 10; ++i) pipe.submit(packet_on(0, 1518));
  sim.run_until(sim::milliseconds(1));
  ASSERT_EQ(tx_done.size(), 10u);
  // Gaps = serialization of 1538 wire bytes at 40G ≈ 308 ns.
  for (std::size_t i = 1; i < tx_done.size(); ++i)
    EXPECT_NEAR(static_cast<double>(tx_done[i] - tx_done[i - 1]), 308.0, 2.0);
}

TEST(NicPipelineTest, SchedulerDropsAreReported) {
  sim::Simulator sim;
  NpConfig cfg = agilio_cx_40g();
  DropEveryN proc(2, 100);  // drop every 2nd
  NicPipeline pipe(sim, cfg, proc);
  int drops = 0, deliveries = 0;
  pipe.set_on_dropped([&](const net::Packet&) { ++drops; });
  pipe.set_on_delivered([&](const net::Packet&) { ++deliveries; });
  for (int i = 0; i < 10; ++i) pipe.submit(packet_on(0));
  sim.run_until(sim::milliseconds(1));
  EXPECT_EQ(drops, 5);
  EXPECT_EQ(deliveries, 5);
  EXPECT_EQ(pipe.stats().scheduler_drops, 5u);
}

TEST(NicPipelineTest, VfRingOverflowDrops) {
  sim::Simulator sim;
  NpConfig cfg = agilio_cx_40g();
  cfg.vf_ring_capacity = 4;
  cfg.num_workers = 1;
  cfg.base_rx_cycles = 120000;  // slow worker → ring backs up
  NullProcessor proc;
  NicPipeline pipe(sim, cfg, proc);
  int sync_rejects = 0;
  for (int i = 0; i < 20; ++i) sync_rejects += pipe.submit(packet_on(0)) ? 0 : 1;
  EXPECT_GT(sync_rejects, 0);
  EXPECT_EQ(pipe.stats().vf_ring_drops, static_cast<std::uint64_t>(sync_rejects));
}

TEST(NicPipelineTest, WorkerCapacityBoundsThroughput) {
  // 50 workers × 1.2 GHz / 3000 cycles = 20 Mpps; offered 40 Mpps of tiny
  // packets → delivered ≈ 20 Mpps.
  sim::Simulator sim;
  NpConfig cfg = agilio_cx_40g();
  cfg.base_rx_cycles = 1500;
  cfg.base_tx_cycles = 1500;
  NullProcessor proc;
  NicPipeline pipe(sim, cfg, proc);
  std::uint64_t delivered = 0;
  pipe.set_on_delivered([&](const net::Packet&) { ++delivered; });
  const double gap_ns = 1e9 / 40e6;  // 40 Mpps offered
  double t = 0;
  const sim::SimTime horizon = sim::milliseconds(5);
  while (t < static_cast<double>(horizon)) {
    const auto at = static_cast<sim::SimTime>(t);
    sim.schedule_at(at, [&pipe, at] { pipe.submit(packet_on(at % 4, 64)); });
    t += gap_ns;
  }
  sim.run_until(horizon);
  const double util = pipe.worker_utilization(sim.now());
  sim.run_until(horizon + sim::milliseconds(1));
  const double mpps = static_cast<double>(delivered) / sim::to_seconds(horizon) / 1e6;
  EXPECT_NEAR(mpps, 20.0, 1.5);
  EXPECT_GT(util, 0.9);
}

TEST(NicPipelineTest, UtilizationNeverExceedsOneUnderSaturation) {
  // Few slow workers under a standing backlog: every worker is busy
  // essentially 100% of the time. The old accounting charged a dispatch's
  // whole busy interval up front, so mid-interval queries reported > 1.0;
  // with completion-time credit plus elapsed-part credit for in-progress
  // intervals the ratio must approach 1 but never pass it, at any instant.
  sim::Simulator sim;
  NpConfig cfg = agilio_cx_40g();
  cfg.num_workers = 2;
  cfg.num_vfs = 1;
  cfg.vf_ring_capacity = 4096;
  cfg.base_rx_cycles = 60000;  // ~50 us per packet at 1.2 GHz
  NullProcessor proc;
  NicPipeline pipe(sim, cfg, proc);
  for (int i = 0; i < 500; ++i) pipe.submit(packet_on(0));

  // Sample utilization at instants that deliberately land inside busy
  // intervals, not on their boundaries.
  for (int tick = 1; tick <= 40; ++tick) {
    const auto at = sim::microseconds(7 * tick + 3);
    sim.schedule_at(at, [&pipe, &sim] {
      const double u = pipe.worker_utilization(sim.now());
      EXPECT_LE(u, 1.0);
      EXPECT_GE(u, 0.0);
    });
  }
  sim.run_until(sim::microseconds(300));
  const double u = pipe.worker_utilization(sim.now());
  EXPECT_LE(u, 1.0);
  EXPECT_GT(u, 0.95);  // saturating load: workers near-continuously busy
  sim.run_all();
  EXPECT_LE(pipe.worker_utilization(sim.now()), 1.0);
}

TEST(NpConfigTest, ValidateRejectsDegenerateConfigs) {
  EXPECT_NO_THROW(NpConfig{}.validate());
  auto broken = [](auto mutate) {
    NpConfig cfg;
    mutate(cfg);
    return cfg;
  };
  EXPECT_THROW(broken([](NpConfig& c) { c.num_workers = 0; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](NpConfig& c) { c.num_vfs = 0; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](NpConfig& c) { c.vf_ring_capacity = 0; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](NpConfig& c) { c.tx_ring_capacity = 0; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](NpConfig& c) { c.reorder_capacity = 0; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](NpConfig& c) { c.freq_ghz = 0.0; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(broken([](NpConfig& c) { c.wire_rate = Rate::zero(); }).validate(),
               std::invalid_argument);
  EXPECT_THROW(
      broken([](NpConfig& c) { c.fixed_pipeline_delay = -1; }).validate(),
      std::invalid_argument);
}

TEST(NpConfigTest, PipelineConstructorValidates) {
  sim::Simulator sim;
  NullProcessor proc;
  NpConfig cfg;
  cfg.num_vfs = 0;
  EXPECT_THROW(NicPipeline(sim, cfg, proc), std::invalid_argument);
}

TEST(NicPipelineTest, RoundRobinAcrossVfRings) {
  // With all rings backlogged, the load balancer serves VFs fairly.
  sim::Simulator sim;
  NpConfig cfg = agilio_cx_40g();
  cfg.num_vfs = 4;
  NullProcessor proc;
  NicPipeline pipe(sim, cfg, proc);
  std::array<int, 4> delivered{};
  pipe.set_on_delivered([&](const net::Packet& p) { ++delivered[p.vf_port % 4]; });
  for (int i = 0; i < 400; ++i) pipe.submit(packet_on(static_cast<std::uint16_t>(i % 4)));
  sim.run_until(sim::milliseconds(5));
  for (int vf = 0; vf < 4; ++vf) EXPECT_NEAR(delivered[vf], 100, 5);
}

TEST(NicPipelineTest, UtilizationLowWhenIdle) {
  sim::Simulator sim;
  NpConfig cfg = agilio_cx_40g();
  NullProcessor proc;
  NicPipeline pipe(sim, cfg, proc);
  pipe.submit(packet_on(0));
  sim.run_until(sim::milliseconds(10));
  EXPECT_LT(pipe.worker_utilization(sim.now()), 0.01);
  EXPECT_EQ(pipe.in_flight(), 0u);
}

TEST(NicPipelineTest, ProcessingCyclesAccumulate) {
  sim::Simulator sim;
  NpConfig cfg = agilio_cx_40g();
  DropEveryN proc(1000000, 500);
  NicPipeline pipe(sim, cfg, proc);
  for (int i = 0; i < 10; ++i) pipe.submit(packet_on(0));
  sim.run_until(sim::milliseconds(1));
  EXPECT_EQ(pipe.stats().processed, 10u);
  EXPECT_EQ(pipe.stats().processing_cycles,
            10ull * (cfg.base_rx_cycles + 500 + cfg.base_tx_cycles));
}

}  // namespace
}  // namespace flowvalve::np

namespace flowvalve::np {
namespace {

/// Processor with per-packet random cycle costs — creates reordering
/// pressure between concurrently-running workers.
class JitteryProcessor final : public PacketProcessor {
 public:
  explicit JitteryProcessor(std::uint64_t seed) : rng_(seed) {}
  Outcome process(net::Packet&, sim::SimTime) override {
    return {true, static_cast<std::uint32_t>(100 + rng_.next_below(20000))};
  }

 private:
  sim::Rng rng_;
};

TEST(NicPipelineReorder, DeliveriesFollowIngressOrder) {
  sim::Simulator sim;
  NpConfig cfg = agilio_cx_40g();
  cfg.enforce_reorder = true;
  JitteryProcessor proc(5);
  NicPipeline pipe(sim, cfg, proc);
  std::vector<std::uint64_t> delivered;
  pipe.set_on_delivered([&](const net::Packet& p) { delivered.push_back(p.id); });
  for (std::uint64_t i = 0; i < 500; ++i) {
    net::Packet p;
    p.id = i;
    p.vf_port = static_cast<std::uint16_t>(i % 4);
    p.wire_bytes = 300;
    pipe.submit(std::move(p));
  }
  sim.run_until(sim::milliseconds(10));
  ASSERT_EQ(delivered.size(), 500u);
  // All packets share one ingress stream: ids must come out sorted.
  EXPECT_TRUE(std::is_sorted(delivered.begin(), delivered.end()));
}

TEST(NicPipelineReorder, DisabledAllowsReordering) {
  sim::Simulator sim;
  NpConfig cfg = agilio_cx_40g();
  cfg.enforce_reorder = false;
  JitteryProcessor proc(5);
  NicPipeline pipe(sim, cfg, proc);
  std::vector<std::uint64_t> delivered;
  pipe.set_on_delivered([&](const net::Packet& p) { delivered.push_back(p.id); });
  for (std::uint64_t i = 0; i < 500; ++i) {
    net::Packet p;
    p.id = i;
    p.vf_port = static_cast<std::uint16_t>(i % 4);
    p.wire_bytes = 300;
    pipe.submit(std::move(p));
  }
  sim.run_until(sim::milliseconds(10));
  ASSERT_EQ(delivered.size(), 500u);
  EXPECT_FALSE(std::is_sorted(delivered.begin(), delivered.end()));
}

TEST(NicPipelineReorder, DroppedPacketsReleaseTheirSlot) {
  sim::Simulator sim;
  NpConfig cfg = agilio_cx_40g();
  cfg.enforce_reorder = true;
  DropEveryN proc(3, 2000);
  NicPipeline pipe(sim, cfg, proc);
  std::uint64_t delivered = 0;
  pipe.set_on_delivered([&](const net::Packet&) { ++delivered; });
  for (int i = 0; i < 300; ++i) {
    net::Packet p;
    p.vf_port = 0;
    p.wire_bytes = 300;
    pipe.submit(std::move(p));
  }
  sim.run_until(sim::milliseconds(10));
  // No head-of-line deadlock: all survivors delivered.
  EXPECT_EQ(delivered, 200u);
  EXPECT_EQ(pipe.in_flight(), 0u);
}

}  // namespace
}  // namespace flowvalve::np
