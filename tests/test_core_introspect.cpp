// Unit tests for engine introspection (fv show).
#include <gtest/gtest.h>

#include "core/introspect.h"
#include "exp/scenarios.h"

namespace flowvalve::core {
namespace {

FlowValveEngine make_engine() {
  FlowValveEngine engine;
  const std::string err =
      engine.configure(exp::motivation_policy_script(sim::Rate::gigabits_per_sec(10)));
  EXPECT_EQ(err, "");
  return engine;
}

TEST(Introspect, SnapshotPreorderCoversAllClasses) {
  auto engine = make_engine();
  const auto snaps = snapshot_classes(engine.tree());
  ASSERT_EQ(snaps.size(), engine.tree().size());
  // Pre-order: root first, parents before children.
  EXPECT_EQ(snaps.front().name, "root");
  EXPECT_EQ(snaps.front().depth, 0);
  for (std::size_t i = 1; i < snaps.size(); ++i) EXPECT_GE(snaps[i].depth, 1);
  // ML appears after its ancestors S1 and S2.
  std::size_t s1 = 0, s2 = 0, ml = 0;
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    if (snaps[i].name == "S1") s1 = i;
    if (snaps[i].name == "S2") s2 = i;
    if (snaps[i].name == "ML") ml = i;
  }
  EXPECT_LT(s1, s2);
  EXPECT_LT(s2, ml);
}

TEST(Introspect, SnapshotCarriesPolicyAndRuntime) {
  auto engine = make_engine();
  const auto snaps = snapshot_classes(engine.tree());
  const auto* ml = &snaps.front();
  for (const auto& s : snaps)
    if (s.name == "ML") ml = &s;
  EXPECT_TRUE(ml->leaf);
  EXPECT_EQ(ml->prio, 1);
  EXPECT_NEAR(ml->guarantee_gbps, 2.0, 0.01);
  EXPECT_GT(ml->theta_gbps, 0.0);  // seeded share
}

TEST(Introspect, ClassShowRendersTree) {
  auto engine = make_engine();
  const std::string show = render_class_show(engine.tree());
  EXPECT_NE(show.find("root"), std::string::npos);
  EXPECT_NE(show.find("ML"), std::string::npos);
  EXPECT_NE(show.find("guarantee 2.00G"), std::string::npos);
  EXPECT_NE(show.find("ceil 7.50G"), std::string::npos);
  // Interior classes are marked with '*'.
  EXPECT_NE(show.find("S2*"), std::string::npos);
}

TEST(Introspect, StatsExportParsable) {
  auto engine = make_engine();
  // Push one packet through so counters are nonzero.
  net::Packet p;
  p.vf_port = 1;  // KVS
  p.wire_bytes = 1000;
  p.tuple.src_ip = 1;
  engine.process(p, sim::milliseconds(1));
  const std::string exp_str = render_stats_export(engine.tree());
  EXPECT_NE(exp_str.find("KVS.fwd_packets 1"), std::string::npos);
  EXPECT_NE(exp_str.find("root.fwd_packets 1"), std::string::npos);
  EXPECT_NE(exp_str.find("ML.fwd_packets 0"), std::string::npos);
}

TEST(Introspect, EngineSummary) {
  auto engine = make_engine();
  const std::string summary = render_engine_summary(engine);
  EXPECT_NE(summary.find("classes=7"), std::string::npos);
  EXPECT_NE(summary.find("cache_hit_rate="), std::string::npos);
}

}  // namespace
}  // namespace flowvalve::core
