// Unit tests for the datacenter flow-level workload generator.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/simulator.h"
#include "traffic/churn.h"
#include "traffic/workload.h"

namespace flowvalve::traffic {
namespace {

using sim::Rate;

/// Sink that accepts everything instantly.
class SinkDevice final : public net::EgressDevice {
 public:
  explicit SinkDevice(sim::Simulator& sim) : sim_(sim) {}
  bool submit(net::Packet pkt) override {
    bytes_ += pkt.wire_bytes;
    pkt.wire_tx_done = sim_.now();
    pkt.delivered_at = sim_.now();
    deliver(pkt);
    return true;
  }
  std::uint64_t bytes() const { return bytes_; }

 private:
  sim::Simulator& sim_;
  std::uint64_t bytes_ = 0;
};

TEST(FlowSizeDist, SamplesWithinBounds) {
  FlowSizeDistribution dist(1.2, 1000, 1'000'000);
  sim::Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const auto s = dist.sample(rng);
    ASSERT_GE(s, 1000u);
    ASSERT_LE(s, 1'000'000u);
  }
}

TEST(FlowSizeDist, EmpiricalMeanMatchesAnalytic) {
  FlowSizeDistribution dist(1.3, 2000, 10'000'000);
  sim::Rng rng(2);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(dist.sample(rng));
  EXPECT_NEAR(sum / n, dist.mean_bytes(), dist.mean_bytes() * 0.05);
}

TEST(FlowSizeDist, HeavyTailPresent) {
  // With alpha=1.1 most flows are small but a few are huge: the top 10% of
  // samples should carry the majority of the bytes.
  FlowSizeDistribution dist(1.1, 1500, 50'000'000);
  sim::Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(static_cast<double>(dist.sample(rng)));
  std::sort(samples.begin(), samples.end());
  double total = 0, top = 0;
  for (double s : samples) total += s;
  for (std::size_t i = samples.size() * 9 / 10; i < samples.size(); ++i) top += samples[i];
  EXPECT_GT(top / total, 0.5);
  // And the median is well below the mean (mean dragged up by the tail).
  EXPECT_LT(samples[samples.size() / 2],
            0.35 * total / static_cast<double>(samples.size()));
}

TEST(DatacenterWorkloadTest, OfferedLoadMatchesConfig) {
  sim::Simulator sim;
  SinkDevice sink(sim);
  IdAllocator ids;
  FlowRouter router(sink);
  DatacenterWorkloadConfig cfg;
  cfg.flows_per_sec = 4000;
  cfg.sizes = FlowSizeDistribution(1.5, 3000, 300'000);
  cfg.flow_rate = Rate::gigabits_per_sec(1);
  DatacenterWorkload wl(sim, router, ids, cfg, sim::Rng(4));
  wl.start();
  sim.run_until(sim::seconds(2));
  const double offered_gbps =
      static_cast<double>(wl.bytes_sent()) * 8.0 / sim::seconds(2);
  EXPECT_NEAR(offered_gbps, cfg.offered_load().gbps(), cfg.offered_load().gbps() * 0.25);
  EXPECT_GT(wl.flows_started(), 6000u);
  EXPECT_GT(wl.flows_completed(), 5000u);
}

TEST(DatacenterWorkloadTest, FlowsTerminateAfterTheirSize) {
  sim::Simulator sim;
  SinkDevice sink(sim);
  IdAllocator ids;
  FlowRouter router(sink);
  DatacenterWorkloadConfig cfg;
  cfg.flows_per_sec = 500;
  cfg.sizes = FlowSizeDistribution(1.5, 3000, 30'000);
  DatacenterWorkload wl(sim, router, ids, cfg, sim::Rng(5));
  wl.start();
  sim.run_until(sim::milliseconds(500));
  wl.stop();
  // Small sizes and a fast flow rate: nearly everything completes.
  EXPECT_GE(wl.flows_completed() + wl.flows_active(), wl.flows_started());
  EXPECT_GT(wl.flows_completed(), wl.flows_started() * 9 / 10);
  EXPECT_EQ(wl.flows_active(), 0u);  // stop() cleared the rest
}

TEST(DatacenterWorkloadTest, StopIsIdempotentAndHalts) {
  sim::Simulator sim;
  SinkDevice sink(sim);
  IdAllocator ids;
  FlowRouter router(sink);
  DatacenterWorkload wl(sim, router, ids, DatacenterWorkloadConfig{}, sim::Rng(6));
  wl.start();
  sim.run_until(sim::milliseconds(50));
  wl.stop();
  wl.stop();
  const auto sent = wl.packets_sent();
  sim.run_until(sim::milliseconds(100));
  EXPECT_EQ(wl.packets_sent(), sent);
}

TEST(DatacenterWorkloadTest, DeliveriesRouteBack) {
  sim::Simulator sim;
  SinkDevice sink(sim);
  IdAllocator ids;
  FlowRouter router(sink);
  DatacenterWorkloadConfig cfg;
  cfg.flows_per_sec = 1000;
  DatacenterWorkload wl(sim, router, ids, cfg, sim::Rng(7));
  wl.start();
  sim.run_until(sim::milliseconds(200));
  EXPECT_GT(wl.packets_delivered(), 0u);
  EXPECT_EQ(wl.packets_dropped(), 0u);
}

// ---- ChurnWorkload ----------------------------------------------------------

TEST(ChurnWorkloadTest, HoldsTargetLiveFlowsUnderReplacement) {
  sim::Simulator sim;
  SinkDevice sink(sim);
  IdAllocator ids;
  FlowRouter router(sink);
  ChurnWorkloadConfig cfg;
  cfg.target_live_flows = 2048;
  cfg.flows_per_sec = 200'000;  // replacements easily keep up with deaths
  cfg.aggregate_rate = Rate::gigabits_per_sec(20);
  ChurnWorkload wl(sim, router, ids, cfg, sim::Rng(8));
  wl.start();
  sim.run_until(sim::milliseconds(40));
  // Flows die and are replaced, but the live population sits at the target.
  EXPECT_GT(wl.flows_completed(), 100u);
  EXPECT_EQ(wl.flows_live(), cfg.target_live_flows);
  EXPECT_GT(wl.flows_started(), cfg.target_live_flows);
  EXPECT_GT(wl.packets_delivered(), 0u);
  wl.stop();
  EXPECT_EQ(wl.flows_live(), 0u);
}

TEST(ChurnWorkloadTest, AggregateRateIndependentOfLiveFlowCount) {
  // The knob churn turns is how one fixed aggregate rate is spread across
  // flows — 100x the live flows must not change the offered load.
  const auto offered = [](std::size_t live) {
    sim::Simulator sim;
    SinkDevice sink(sim);
    IdAllocator ids;
    FlowRouter router(sink);
    ChurnWorkloadConfig cfg;
    cfg.target_live_flows = live;
    cfg.flows_per_sec = 0;  // no replacement: pure round-robin service
    cfg.min_packets = 1 << 20;  // flows never complete inside the horizon
    cfg.max_packets = 1 << 21;
    cfg.aggregate_rate = Rate::gigabits_per_sec(10);
    ChurnWorkload wl(sim, router, ids, cfg, sim::Rng(9));
    wl.start();
    sim.run_until(sim::milliseconds(50));
    return static_cast<double>(wl.bytes_sent()) * 8.0 / sim::milliseconds(50);
  };
  const double small = offered(64);
  const double large = offered(6400);
  EXPECT_NEAR(small, 10.0, 1.0);
  EXPECT_NEAR(large, small, small * 0.05);
}

TEST(ChurnWorkloadTest, SerialSchemeYieldsUniqueKeysAcrossVfs) {
  // tuple_for/vf_for is the shared contract with bench/scale_sweep's table
  // primer: (vf, tuple) keys must be unique per serial.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> keys;
  for (std::uint64_t serial = 0; serial < 200'000; ++serial) {
    const net::FiveTuple t = ChurnWorkload::tuple_for(serial);
    keys.emplace_back(
        (static_cast<std::uint64_t>(t.src_ip) << 16) | t.src_port,
        ChurnWorkload::vf_for(serial, 4));
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
}

TEST(ChurnWorkloadTest, SameSeedSameChurnHistory) {
  const auto run = [] {
    sim::Simulator sim;
    SinkDevice sink(sim);
    IdAllocator ids;
    FlowRouter router(sink);
    ChurnWorkloadConfig cfg;
    cfg.target_live_flows = 512;
    cfg.flows_per_sec = 100'000;
    ChurnWorkload wl(sim, router, ids, cfg, sim::Rng(10));
    wl.start();
    sim.run_until(sim::milliseconds(30));
    return std::tuple{wl.packets_sent(), wl.bytes_sent(), wl.flows_started(),
                      wl.flows_completed()};
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace flowvalve::traffic
