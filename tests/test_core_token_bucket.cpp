// Unit + property tests for token buckets and the two-color meter.
#include <gtest/gtest.h>

#include "core/token_bucket.h"
#include "sim/rng.h"

namespace flowvalve::core {
namespace {

TEST(TokenBucket, MeterGreenConsumesTokens) {
  TokenBucket b(10000, 5000);
  EXPECT_EQ(b.meter(3000), MeterColor::kGreen);
  EXPECT_DOUBLE_EQ(b.tokens(), 2000.0);
}

TEST(TokenBucket, MeterRedLeavesTokensUntouched) {
  TokenBucket b(10000, 1000);
  EXPECT_EQ(b.meter(3000), MeterColor::kRed);
  EXPECT_DOUBLE_EQ(b.tokens(), 1000.0);
}

TEST(TokenBucket, ExactTokensAreGreen) {
  TokenBucket b(10000, 3000);
  EXPECT_EQ(b.meter(3000), MeterColor::kGreen);
  EXPECT_DOUBLE_EQ(b.tokens(), 0.0);
  EXPECT_EQ(b.meter(1), MeterColor::kRed);
}

TEST(TokenBucket, ReplenishSaturatesAtCapacity) {
  TokenBucket b(1000, 900);
  b.replenish(sim::Rate::gigabits_per_sec(8), sim::microseconds(1));  // +1000 bytes
  EXPECT_DOUBLE_EQ(b.tokens(), 1000.0);
}

TEST(TokenBucket, ReplenishAddsThetaDt) {
  TokenBucket b(1e9, 0);
  // 8 Gbps = 1 byte/ns over 1 µs = 1000 bytes.
  b.replenish(sim::Rate::gigabits_per_sec(8), sim::microseconds(1));
  EXPECT_NEAR(b.tokens(), 1000.0, 1e-6);
}

TEST(TokenBucket, SetCapacityClampsTokens) {
  TokenBucket b(10000, 8000);
  b.set_capacity(5000);
  EXPECT_DOUBLE_EQ(b.tokens(), 5000.0);
  EXPECT_DOUBLE_EQ(b.capacity(), 5000.0);
}

TEST(TokenBucket, ResetClampsToCapacity) {
  TokenBucket b(1000, 0);
  b.reset(5000);
  EXPECT_DOUBLE_EQ(b.tokens(), 1000.0);
  b.reset();
  EXPECT_DOUBLE_EQ(b.tokens(), 0.0);
}

TEST(TokenBucket, DefaultBurstHasFloor) {
  // Tiny rate: floor dominates.
  EXPECT_DOUBLE_EQ(default_burst_bytes(sim::Rate::kilobits_per_sec(1),
                                       sim::microseconds(100)),
                   2.0 * 1518.0);
  // Big rate: θ·window dominates. 10G over 1ms = 1.25 MB.
  EXPECT_NEAR(default_burst_bytes(sim::Rate::gigabits_per_sec(10), sim::milliseconds(1)),
              1.25e6, 1.0);
  // Custom floor.
  EXPECT_DOUBLE_EQ(default_burst_bytes(sim::Rate::kilobits_per_sec(1),
                                       sim::microseconds(1), 4096.0),
                   4096.0);
}

// Property: long-run forwarded bytes never exceed rate·time + initial burst,
// and tokens never go negative, across random packet trains and rates.
class BucketConformance : public ::testing::TestWithParam<double> {};

TEST_P(BucketConformance, NeverExceedsRateTimesTime) {
  const auto rate = sim::Rate::gigabits_per_sec(GetParam());
  const double burst = default_burst_bytes(rate, sim::microseconds(500));
  TokenBucket b(burst, burst);
  sim::Rng rng(static_cast<std::uint64_t>(GetParam() * 1000));

  sim::SimTime now = 0;
  sim::SimTime last_replenish = 0;
  double forwarded = 0.0;
  const sim::SimTime horizon = sim::milliseconds(100);
  while (now < horizon) {
    // Offered load ~2x the token rate with random gaps and sizes.
    const std::uint32_t bytes = 64 + static_cast<std::uint32_t>(rng.next_below(1455));
    const double gap_ns = static_cast<double>(bytes) * 8.0 / (2.0 * rate.bps() / 1e9);
    now += std::max<sim::SimTime>(1, static_cast<sim::SimTime>(gap_ns));
    if (now - last_replenish >= sim::microseconds(100)) {
      b.replenish(rate, now - last_replenish);
      last_replenish = now;
    }
    if (b.meter(bytes) == MeterColor::kGreen) forwarded += bytes;
    ASSERT_GE(b.tokens(), 0.0);
  }
  const double bound = rate.bytes_per_ns() * static_cast<double>(horizon) + burst;
  EXPECT_LE(forwarded, bound);
  // And it should achieve at least ~90% of the allowance (work conservation
  // under 2x offered load).
  EXPECT_GE(forwarded, 0.9 * rate.bytes_per_ns() * static_cast<double>(horizon) - burst);
}

INSTANTIATE_TEST_SUITE_P(Rates, BucketConformance,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 40.0));

// Regression: replenishing a frame's worth of tokens in many sub-byte
// increments accumulates floating-point error, leaving the fill at
// bytes − ε when the exact sum equals bytes. The meter must still mark the
// frame GREEN (relative-epsilon comparison), at every frame size, and the
// shortfall forgiven must stay far below a byte.
TEST(TokenBucket, SubByteReplenishDriftStaysGreen) {
  for (const std::uint32_t frame : {64u, 1000u, 1518u}) {
    TokenBucket b(2.0 * frame, 0.0);
    // 1 Gbps for 1 ns = 0.125 bytes per replenish: 8 · frame tiny adds sum
    // exactly to `frame` in real arithmetic.
    const auto rate = sim::Rate::gigabits_per_sec(1.0);
    for (std::uint32_t i = 0; i < 8 * frame; ++i) b.replenish(rate, 1);
    EXPECT_NEAR(b.tokens(), static_cast<double>(frame), 1e-3) << frame;
    EXPECT_EQ(b.meter(frame), MeterColor::kGreen) << frame;
    // The consume clamps at zero — drift must never mint tokens.
    EXPECT_GE(b.tokens(), 0.0);
    EXPECT_LT(b.tokens(), 1.0);
    // With the bucket now ~empty, the next frame is a clear RED: the epsilon
    // forgives rounding error, not missing tokens.
    EXPECT_EQ(b.meter(frame), MeterColor::kRed) << frame;
  }
}

}  // namespace
}  // namespace flowvalve::core
