// Regression tests for NicPipeline's reorder system (paper Fig. 4) —
// specifically the reorder_commit edge cases: a drop in the middle of the
// window must release the later packets it was blocking, and the pipeline
// must always drain back to in_flight == 0.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "np/nic_pipeline.h"
#include "sim/simulator.h"

namespace flowvalve::np {
namespace {

/// Per-packet-id scripted outcomes; unscripted packets forward at a fixed
/// cost. Lets a test force any completion order across workers.
class ScriptedProcessor final : public PacketProcessor {
 public:
  void script(std::uint64_t id, bool forward, std::uint32_t cycles) {
    script_[id] = Outcome{forward, cycles};
  }

  Outcome process(net::Packet& pkt, sim::SimTime) override {
    if (auto it = script_.find(pkt.id); it != script_.end()) return it->second;
    return {true, 100};
  }

 private:
  std::map<std::uint64_t, Outcome> script_;
};

net::Packet make_packet(std::uint64_t id, std::uint32_t bytes = 1000) {
  net::Packet pkt;
  pkt.id = id;
  pkt.flow_id = 1;
  pkt.vf_port = 0;
  pkt.wire_bytes = bytes;
  pkt.seq_in_flow = id;
  return pkt;
}

NpConfig three_worker_config(bool enforce_reorder = true) {
  NpConfig cfg;
  cfg.num_workers = 3;
  cfg.num_vfs = 1;
  cfg.enforce_reorder = enforce_reorder;
  cfg.fixed_pipeline_delay = sim::microseconds(1);
  return cfg;
}

struct Rig {
  sim::Simulator sim;
  ScriptedProcessor proc;
  NicPipeline pipeline;
  std::vector<std::uint64_t> delivered;
  std::vector<std::uint64_t> dropped;

  explicit Rig(NpConfig cfg) : pipeline(sim, cfg, proc) {
    pipeline.set_on_delivered(
        [this](const net::Packet& pkt) { delivered.push_back(pkt.id); });
    pipeline.set_on_dropped(
        [this](const net::Packet& pkt) { dropped.push_back(pkt.id); });
  }
};

// Three packets grabbed by three workers; the middle one (seq 1) is dropped
// and finishes FIRST. Its hole must not wedge the window: once the slow
// head (seq 0) commits, both survivors go out, in ingress order.
TEST(NpReorder, MidWindowDropReleasesLaterPackets) {
  Rig run(three_worker_config());
  run.proc.script(0, true, 20000);  // head: slowest
  run.proc.script(1, false, 100);   // middle: dropped, completes first
  run.proc.script(2, true, 3000);   // tail: completes second

  for (std::uint64_t id = 0; id < 3; ++id)
    EXPECT_TRUE(run.pipeline.submit(make_packet(id)));
  run.sim.run_all();

  EXPECT_EQ(run.delivered, (std::vector<std::uint64_t>{0, 2}));
  EXPECT_EQ(run.dropped, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(run.pipeline.in_flight(), 0u);
  EXPECT_EQ(run.pipeline.stats().scheduler_drops, 1u);
  EXPECT_EQ(run.pipeline.stats().forwarded_to_wire, 2u);
}

// A dropped packet at the HEAD of the window must advance the release
// pointer immediately so buffered successors flow out.
TEST(NpReorder, HeadDropAdvancesWindow) {
  Rig run(three_worker_config());
  run.proc.script(0, false, 100);   // head dropped, completes first
  run.proc.script(1, true, 20000);  // slow survivor
  run.proc.script(2, true, 3000);   // fast survivor, must wait for 1

  for (std::uint64_t id = 0; id < 3; ++id)
    EXPECT_TRUE(run.pipeline.submit(make_packet(id)));
  run.sim.run_all();

  EXPECT_EQ(run.delivered, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(run.pipeline.in_flight(), 0u);
}

// With the reorder system on, wire order equals ingress order even when
// completion order inverts; with it off, the fast packet overtakes.
TEST(NpReorder, ReorderPreservesIngressOrder) {
  for (bool enforce : {true, false}) {
    Rig run(three_worker_config(enforce));
    run.proc.script(0, true, 20000);
    run.proc.script(1, true, 100);

    EXPECT_TRUE(run.pipeline.submit(make_packet(0)));
    EXPECT_TRUE(run.pipeline.submit(make_packet(1)));
    run.sim.run_all();

    const std::vector<std::uint64_t> expected =
        enforce ? std::vector<std::uint64_t>{0, 1}
                : std::vector<std::uint64_t>{1, 0};
    EXPECT_EQ(run.delivered, expected) << "enforce_reorder=" << enforce;
    EXPECT_EQ(run.pipeline.in_flight(), 0u);
  }
}

// Every-other-packet drops across a burst larger than the worker pool:
// in_flight must return to 0 and the conservation identity must hold
// exactly after the drain.
TEST(NpReorder, BurstWithDropsDrainsToZeroInFlight) {
  constexpr std::uint64_t kPackets = 64;
  Rig run(three_worker_config());
  for (std::uint64_t id = 0; id < kPackets; ++id)
    run.proc.script(id, id % 2 == 0, 100 + 997 * (id % 7));

  std::uint64_t accepted = 0;
  for (std::uint64_t id = 0; id < kPackets; ++id)
    if (run.pipeline.submit(make_packet(id))) ++accepted;
  run.sim.run_all();

  const auto& st = run.pipeline.stats();
  EXPECT_EQ(run.pipeline.in_flight(), 0u);
  EXPECT_EQ(st.submitted, kPackets);
  EXPECT_EQ(st.submitted, st.forwarded_to_wire + st.vf_ring_drops +
                              st.scheduler_drops + st.tx_ring_drops);
  EXPECT_EQ(run.delivered.size(), st.forwarded_to_wire);
  // Survivors come out in ingress order.
  for (std::size_t i = 1; i < run.delivered.size(); ++i)
    EXPECT_LT(run.delivered[i - 1], run.delivered[i]);
}

// The tail of the window dropping (after earlier packets already released)
// must not disturb anything.
TEST(NpReorder, TailDropIsClean) {
  Rig run(three_worker_config());
  run.proc.script(0, true, 100);
  run.proc.script(1, true, 200);
  run.proc.script(2, false, 20000);  // slow tail, dropped

  for (std::uint64_t id = 0; id < 3; ++id)
    EXPECT_TRUE(run.pipeline.submit(make_packet(id)));
  run.sim.run_all();

  EXPECT_EQ(run.delivered, (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(run.dropped, (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(run.pipeline.in_flight(), 0u);
}

// The Tx ring filling up WHILE the reorder system drains its in-order
// prefix: the head admission succeeds, the rest of the prefix tail-drops at
// the FIFO, and nothing wedges or double-counts.
TEST(NpReorder, TxRingFullDuringReorderRelease) {
  NpConfig cfg = three_worker_config();
  cfg.tx_ring_capacity = 1;
  Rig run(cfg);
  run.proc.script(0, true, 20000);  // head: slowest, blocks the window
  run.proc.script(1, true, 100);    // buffered behind the head
  run.proc.script(2, true, 200);    // buffered behind the head

  for (std::uint64_t id = 0; id < 3; ++id)
    EXPECT_TRUE(run.pipeline.submit(make_packet(id)));
  run.sim.run_all();

  // When the head finally commits, the whole prefix releases in one instant:
  // packet 0 takes the single Tx slot, 1 and 2 hit a full ring.
  EXPECT_EQ(run.delivered, (std::vector<std::uint64_t>{0}));
  EXPECT_EQ(run.dropped, (std::vector<std::uint64_t>{1, 2}));
  const auto& st = run.pipeline.stats();
  EXPECT_EQ(st.tx_ring_drops, 2u);
  EXPECT_EQ(st.forwarded_to_wire, 1u);
  EXPECT_EQ(st.submitted, st.forwarded_to_wire + st.vf_ring_drops +
                              st.scheduler_drops + st.tx_ring_drops +
                              st.reorder_flush_drops);
  EXPECT_EQ(run.pipeline.in_flight(), 0u);
}

// A stuck completion (here: merely very slow) must not grow the reorder
// buffer past its cap. Once the cap trips, the hole is declared lost, the
// buffered survivors flow out in order, and the straggler's eventual
// completion is counted as a reorder-flush drop — not delivered out of
// order, not leaked.
TEST(NpReorder, CapFlushSkipsStuckHoleAndDropsLateCompletion) {
  NpConfig cfg = three_worker_config();
  cfg.num_workers = 2;
  cfg.reorder_capacity = 2;
  Rig run(cfg);
  run.proc.script(0, true, 1000000);  // seq 0: stuck for ~833 us
  for (std::uint64_t id = 1; id <= 4; ++id) run.proc.script(id, true, 100);

  for (std::uint64_t id = 0; id <= 4; ++id)
    EXPECT_TRUE(run.pipeline.submit(make_packet(id)));
  run.sim.run_all();

  // Survivors 1-3 pile up behind the hole until the cap (2) trips, then all
  // release in ingress order; 4 flows straight through afterwards.
  EXPECT_EQ(run.delivered, (std::vector<std::uint64_t>{1, 2, 3, 4}));
  EXPECT_EQ(run.dropped, (std::vector<std::uint64_t>{0}));
  const auto& st = run.pipeline.stats();
  EXPECT_GE(st.reorder_flushes, 1u);
  EXPECT_EQ(st.reorder_flush_drops, 1u);
  EXPECT_EQ(st.reorder_occupancy_peak, 3u);
  EXPECT_EQ(st.submitted, st.forwarded_to_wire + st.vf_ring_drops +
                              st.scheduler_drops + st.tx_ring_drops +
                              st.reorder_flush_drops);
  EXPECT_EQ(run.pipeline.in_flight(), 0u);
  EXPECT_EQ(run.pipeline.reorder_occupancy(), 0u);
}

// Drive next_release_seq_ through five full revolutions of the power-of-two
// reorder ring (capacity 16 + 4*3 workers + 64 slack → 128 slots) with a mix
// of scripted drops and slow stragglers, so ring indices wrap while holes are
// open across the boundary. The window must stay order-preserving and
// conservation-exact with zero emergency flushes.
TEST(NpReorder, RingWrapAroundWithHolesStaysOrdered) {
  constexpr std::uint64_t kPackets = 700;
  NpConfig cfg = three_worker_config();
  cfg.reorder_capacity = 16;       // window rounds up to 128 — kPackets wraps it 5x
  cfg.vf_ring_capacity = 1024;     // accept the whole burst up front
  // Per-packet dispatch: this scenario's ≤6-completions-behind-a-hole math
  // (and the 128-slot window) assumes one packet per worker; the batched
  // wrap-around case is covered by test_np_batch_diff.cpp.
  cfg.batch_size = 1;
  Rig run(cfg);

  std::vector<std::uint64_t> expect_delivered, expect_dropped;
  for (std::uint64_t id = 0; id < kPackets; ++id) {
    if (id % 7 == 0) {
      run.proc.script(id, false, 100);   // scheduler drop -> gap in the window
      expect_dropped.push_back(id);
    } else {
      // Every 11th survivor is a straggler: ~9 us vs ~2.4 us service time,
      // so up to ~6 later completions buffer behind its hole (well under the
      // 16 cap) and the hole frequently straddles a ring-boundary crossing.
      run.proc.script(id, true, id % 11 == 0 ? 8000 : 100);
      expect_delivered.push_back(id);
    }
  }

  for (std::uint64_t id = 0; id < kPackets; ++id)
    EXPECT_TRUE(run.pipeline.submit(make_packet(id)));
  EXPECT_EQ(run.pipeline.reorder_window(), 128u);
  run.sim.run_all();

  EXPECT_EQ(run.delivered, expect_delivered);  // ingress order, nothing skipped
  std::sort(run.dropped.begin(), run.dropped.end());  // drop callbacks fire at
  EXPECT_EQ(run.dropped, expect_dropped);             // completion, not release
  const auto& st = run.pipeline.stats();
  EXPECT_EQ(st.submitted, kPackets);
  EXPECT_EQ(st.forwarded_to_wire, expect_delivered.size());
  EXPECT_EQ(st.scheduler_drops, expect_dropped.size());
  EXPECT_EQ(st.vf_ring_drops, 0u);
  EXPECT_EQ(st.tx_ring_drops, 0u);
  EXPECT_EQ(st.reorder_flushes, 0u);
  EXPECT_EQ(st.reorder_timeout_flushes, 0u);
  EXPECT_EQ(st.watchdog_requeues, 0u);
  EXPECT_GE(st.reorder_occupancy_peak, 2u);  // stragglers really buffered packets
  EXPECT_EQ(run.pipeline.in_flight(), 0u);
  EXPECT_EQ(run.pipeline.reorder_occupancy(), 0u);
}

// A head-of-line hole older than recovery.reorder_timeout is flushed past
// instead of wedging the window until the capacity cap: survivors release in
// order and the straggler's eventual completion is dropped, not reordered.
TEST(NpReorder, HoleTimeoutFlushReleasesSurvivors) {
  NpConfig cfg = three_worker_config();
  cfg.recovery.watchdog_budget = -1;  // isolate the timeout path: no salvage
  cfg.recovery.reorder_timeout = sim::microseconds(300);
  Rig run(cfg);
  run.proc.script(0, true, 1000000);  // ~836 us busy, far past the timeout
  for (std::uint64_t id = 1; id <= 4; ++id) run.proc.script(id, true, 100);

  for (std::uint64_t id = 0; id <= 4; ++id)
    EXPECT_TRUE(run.pipeline.submit(make_packet(id)));
  run.sim.run_all();

  EXPECT_EQ(run.delivered, (std::vector<std::uint64_t>{1, 2, 3, 4}));
  EXPECT_EQ(run.dropped, (std::vector<std::uint64_t>{0}));
  const auto& st = run.pipeline.stats();
  EXPECT_GE(st.reorder_timeout_flushes, 1u);
  EXPECT_EQ(st.reorder_flushes, 0u);  // timeout fired well before the cap
  EXPECT_EQ(run.pipeline.in_flight(), 0u);
  EXPECT_EQ(run.pipeline.reorder_occupancy(), 0u);
}

// A worker stuck past recovery.watchdog_budget has its packet salvaged and
// requeued; the retry skips the processor (the verdict stands), so the packet
// still reaches the wire — in ingress order, ahead of everything buffered
// behind its hole.
TEST(NpReorder, WatchdogRequeueDeliversInOrder) {
  NpConfig cfg = three_worker_config();
  cfg.recovery.watchdog_budget = sim::microseconds(400);
  Rig run(cfg);
  run.proc.script(0, true, 1000000);  // ~836 us busy > 400 us budget
  for (std::uint64_t id = 1; id <= 4; ++id) run.proc.script(id, true, 100);

  for (std::uint64_t id = 0; id <= 4; ++id)
    EXPECT_TRUE(run.pipeline.submit(make_packet(id)));
  run.sim.run_all();

  EXPECT_EQ(run.delivered, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(run.dropped.empty());
  const auto& st = run.pipeline.stats();
  EXPECT_GE(st.watchdog_requeues, 1u);
  EXPECT_EQ(st.watchdog_drops, 0u);
  EXPECT_EQ(st.forwarded_to_wire, 5u);
  EXPECT_EQ(run.pipeline.in_flight(), 0u);
}

}  // namespace
}  // namespace flowvalve::np
