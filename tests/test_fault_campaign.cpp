// Tier-1 coverage for compound-fault campaigns (DESIGN.md §16): the fault
// taxonomy is exhaustive-by-construction, fault events round-trip through
// their wire format, seed-derived campaigns are bit-deterministic (including
// across --jobs N), island blackout survives every backend × batch size, the
// recovery-SLO oracle actually fires, and the CLI repro line + schedule
// minimizer reproduce and shrink failures.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "check/cli_options.h"
#include "check/fuzzer.h"
#include "check/runner.h"
#include "fault/fault.h"
#include "np/np_config.h"

namespace flowvalve::check {
namespace {

// --- Taxonomy ------------------------------------------------------------

TEST(FaultTaxonomy, KindTableIsExhaustiveAndDense) {
  // kAllFaultKinds must mirror the enum exactly: one entry per kind, in
  // declaration order. The covered switch in fault_kind_name (no default)
  // makes adding an enum value without extending the table a compile error;
  // this test closes the loop at runtime.
  std::set<std::string> names;
  for (std::size_t i = 0; i < fault::kFaultKindCount; ++i) {
    const fault::FaultKind kind = fault::kAllFaultKinds[i];
    EXPECT_EQ(static_cast<std::size_t>(kind), i)
        << "kAllFaultKinds out of declaration order at " << i;
    const std::string name = fault::fault_kind_name(kind);
    EXPECT_NE(name, "unknown") << "kind " << i << " has no name";
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate fault kind name '" << name << "'";
    fault::FaultKind parsed;
    ASSERT_TRUE(fault::fault_kind_from_name(name, parsed)) << name;
    EXPECT_EQ(parsed, kind) << name;
  }
  fault::FaultKind parsed;
  EXPECT_FALSE(fault::fault_kind_from_name("no-such-fault", parsed));
  EXPECT_FALSE(fault::fault_kind_from_name("", parsed));
}

TEST(FaultTaxonomy, EventWireFormatRoundTrips) {
  for (std::size_t i = 0; i < fault::kFaultKindCount; ++i) {
    fault::FaultEvent ev;
    ev.kind = fault::kAllFaultKinds[i];
    ev.at = 123456789 + static_cast<sim::SimTime>(i);
    ev.duration = 987654 + static_cast<sim::SimDuration>(i);
    ev.worker = static_cast<unsigned>(i % 7);
    ev.worker_count = static_cast<unsigned>(1 + i % 3);
    ev.magnitude = 0.12345678901234567 * static_cast<double>(i + 1);
    ev.period = static_cast<sim::SimDuration>(i * 31);
    fault::FaultEvent back;
    ASSERT_TRUE(fault::parse_fault_event(fault::format_fault_event(ev), back))
        << fault::format_fault_event(ev);
    EXPECT_EQ(back.kind, ev.kind);
    EXPECT_EQ(back.at, ev.at);
    EXPECT_EQ(back.duration, ev.duration);
    EXPECT_EQ(back.worker, ev.worker);
    EXPECT_EQ(back.worker_count, ev.worker_count);
    EXPECT_EQ(back.magnitude, ev.magnitude);  // %.17g: bit-exact
    EXPECT_EQ(back.period, ev.period);
  }
  fault::FaultEvent ev;
  EXPECT_FALSE(fault::parse_fault_event("", ev));
  EXPECT_FALSE(fault::parse_fault_event("worker-crash", ev));
  EXPECT_FALSE(fault::parse_fault_event("no-such@1,2,3,4,5,6", ev));
  EXPECT_FALSE(fault::parse_fault_event("worker-crash@1,2,3", ev));
  EXPECT_FALSE(fault::parse_fault_event("worker-crash@1,2,3,4,5,6,junk", ev));
}

// --- Campaign generator --------------------------------------------------

TEST(FaultCampaign, ScheduleIsDeterministicAndWellFormed) {
  const np::NpConfig cfg;
  const sim::SimDuration horizon = sim::milliseconds(20);
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    const fault::FaultSchedule a =
        fault::generate_campaign_schedule(seed, horizon, cfg);
    const fault::FaultSchedule b =
        fault::generate_campaign_schedule(seed, horizon, cfg);
    ASSERT_EQ(a.size(), b.size()) << "seed " << seed;
    ASSERT_GE(a.size(), 2u);
    ASSERT_LE(a.size(), 5u);
    std::set<unsigned> islands_hit;
    std::set<fault::FaultKind> globals_hit;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(fault::format_fault_event(a[i]),
                fault::format_fault_event(b[i]))
          << "seed " << seed << " event " << i;
      EXPECT_GT(a[i].duration, 0) << "campaign events must all clear";
      EXPECT_LE(a[i].at + a[i].duration, horizon * 9 / 10)
          << "seed " << seed << " event " << i << " clears too late";
      if (i + 1 < a.size()) EXPECT_LE(a[i].at, a[i + 1].at);
      switch (a[i].kind) {
        case fault::FaultKind::kIslandBlackout:
          EXPECT_TRUE(islands_hit.insert(a[i].worker).second)
              << "two worker-scoped episodes on island " << a[i].worker;
          break;
        case fault::FaultKind::kFlappingWorker:
        case fault::FaultKind::kWorkerStall:
        case fault::FaultKind::kWorkerCrash:
        case fault::FaultKind::kCtrlPartition:
          EXPECT_TRUE(islands_hit.insert(cfg.island_of(a[i].worker)).second)
              << "two worker-scoped episodes on island "
              << cfg.island_of(a[i].worker);
          break;
        default:
          EXPECT_TRUE(globals_hit.insert(a[i].kind).second)
              << "global kind repeated: "
              << fault::fault_kind_name(a[i].kind);
          break;
      }
    }
    EXPECT_FALSE(islands_hit.empty())
        << "seed " << seed << ": no worker-scoped episode";
  }
}

TEST(FaultCampaign, RunsAreBitDeterministicAcrossJobs) {
  RunOptions opts;
  opts.campaign = true;
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4};
  const std::vector<SeedOutcome> seq = run_corpus(seeds, opts, /*jobs=*/1);
  const std::vector<SeedOutcome> par = run_corpus(seeds, opts, /*jobs=*/4);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    ASSERT_FALSE(seq[i].crashed) << seq[i].crash_what;
    ASSERT_FALSE(par[i].crashed) << par[i].crash_what;
    EXPECT_TRUE(seq[i].report.ok()) << seq[i].report.summary();
    EXPECT_EQ(report_fingerprint(seq[i].report),
              report_fingerprint(par[i].report))
        << "seed " << seeds[i] << " diverges under --jobs 4";
  }
}

// --- Island blackout across the backend × batch matrix -------------------

class BlackoutMatrix
    : public ::testing::TestWithParam<std::pair<core::BackendKind, unsigned>> {
};

TEST_P(BlackoutMatrix, SurvivesWithConservationIntact) {
  const auto [backend, batch] = GetParam();
  FuzzScenario sc = generate_differential_scenario(1);
  sc.nic.recovery.admission_enabled = true;
  RunOptions opts;
  opts.differential = true;
  opts.campaign = true;  // arms the RecoverySloChecker
  opts.backend = backend;
  opts.batch_size = batch;
  opts.faults = fault::single_fault(fault::FaultKind::kIslandBlackout,
                                    sc.horizon * 2 / 5, sc.horizon / 5,
                                    sc.nic);
  const CheckReport report = run_scenario(sc, opts);
  EXPECT_TRUE(report.ok())
      << report.summary() << "\n"
      << (report.violations.empty() ? std::string("(none stored)")
                                    : report.violations.front().to_string());
  EXPECT_EQ(report.faults_recovered, 1u);
  EXPECT_GE(report.nic.islands_restarted, 1u);
  EXPECT_EQ(report.delivered, report.nic.forwarded_to_wire);
  // The SLO share half ran and measured a bounded reconvergence.
  EXPECT_GE(report.share_reconvergence, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsBothBatches, BlackoutMatrix,
    ::testing::Values(
        std::make_pair(core::BackendKind::kFlowValve, 1u),
        std::make_pair(core::BackendKind::kFlowValve, 32u),
        std::make_pair(core::BackendKind::kStfq, 1u),
        std::make_pair(core::BackendKind::kStfq, 32u),
        std::make_pair(core::BackendKind::kEiffel, 1u),
        std::make_pair(core::BackendKind::kEiffel, 32u),
        std::make_pair(core::BackendKind::kSpPifo, 1u),
        std::make_pair(core::BackendKind::kSpPifo, 32u)),
    [](const ::testing::TestParamInfo<std::pair<core::BackendKind, unsigned>>&
           info) {
      return std::string(core::backend_kind_name(info.param.first)) +
             "_batch" + std::to_string(info.param.second);
    });

// --- Recovery-SLO oracle -------------------------------------------------

TEST(RecoverySlo, FiresOnImpossibleMttrBound) {
  RunOptions opts;
  opts.campaign = true;
  opts.slo_recovery_bound = 1;  // 1 ns: no real recovery can meet this
  const CheckReport report = run_seed(1, opts);
  EXPECT_FALSE(report.ok());
  bool from_slo = false;
  for (const Violation& v : report.violations)
    if (v.checker == "recovery-slo") from_slo = true;
  EXPECT_TRUE(from_slo) << report.summary();
}

// --- CLI repro round-trip ------------------------------------------------

std::vector<char*> to_argv(std::vector<std::string>& tokens) {
  std::vector<char*> argv;
  argv.reserve(tokens.size());
  for (std::string& t : tokens) argv.push_back(t.data());
  return argv;
}

std::vector<std::string> split_words(const std::string& line) {
  std::vector<std::string> words;
  std::size_t pos = 0;
  while (pos < line.size()) {
    const std::size_t space = line.find(' ', pos);
    const std::size_t end = space == std::string::npos ? line.size() : space;
    if (end > pos) words.push_back(line.substr(pos, end - pos));
    pos = end + 1;
  }
  return words;
}

TEST(CliRepro, ReproLineRoundTripsEveryRunOption) {
  std::vector<std::string> tokens = {
      "fuzz_check",    "--seed",        "0x2a",
      "--differential", "--tolerance",  "0.07",
      "--campaign",    "--slo-bound-ms", "25",
      "--storm",       "both",          "--reconfig",
      "3",             "--horizon-ms",  "12",
      "--batch",       "32",            "--backend",
      "stfq",          "--scheduler",   "heap",
      "--jobs",        "4",             "--fault-event",
      "worker-crash@100,200,1,1,0,0",   "--inject-fault",
      "leak",          "--every",       "53",
      "-v"};
  std::vector<char*> argv = to_argv(tokens);
  CliOptions first;
  ASSERT_EQ(parse_cli(static_cast<int>(argv.size()), argv.data(), first),
            CliParseResult::kOk);
  // Everything parsed must be emitted back...
  const std::string repro = repro_command(first, first.start_seed);
  for (const char* flag :
       {"--differential", "--tolerance", "--campaign", "--slo-bound-ms",
        "--storm both", "--reconfig 3", "--horizon-ms 12", "--batch 32",
        "--backend stfq", "--scheduler heap", "--jobs 4",
        "--fault-event worker-crash@100,200,1,1,0,0", "--inject-fault leak",
        "--every 53"})
    EXPECT_NE(repro.find(flag), std::string::npos)
        << "repro line lost '" << flag << "': " << repro;
  // ...and parsing the emitted line must reproduce the exact same options:
  // parse → emit → parse → emit is a fixpoint.
  std::vector<std::string> again = split_words(repro);
  std::vector<char*> argv2 = to_argv(again);
  CliOptions second;
  ASSERT_EQ(parse_cli(static_cast<int>(argv2.size()), argv2.data(), second),
            CliParseResult::kOk)
      << repro;
  EXPECT_EQ(repro_command(second, second.start_seed), repro);
  // The resolved fault schedules agree event-for-event.
  ASSERT_EQ(first.opts.faults.size(), second.opts.faults.size());
  for (std::size_t i = 0; i < first.opts.faults.size(); ++i)
    EXPECT_EQ(fault::format_fault_event(first.opts.faults[i]),
              fault::format_fault_event(second.opts.faults[i]));
}

// --- Minimizer -----------------------------------------------------------

TEST(Minimizer, ShrinksToTheFailingEvent) {
  // A permanent commit-leak bug among harmless timed faults: only the leak
  // makes the run fail, so the minimizer must strip everything else.
  RunOptions opts;
  fault::FaultEvent leak;
  leak.kind = fault::FaultKind::kLeakCommit;
  leak.at = 0;
  leak.duration = 0;  // permanent
  leak.period = 97;
  opts.faults.push_back(leak);
  const FuzzScenario probe = generate_scenario(7);
  fault::FaultSchedule padding = fault::single_fault(
      fault::FaultKind::kWireDip, probe.horizon / 4, probe.horizon / 8,
      probe.nic);
  opts.faults.insert(opts.faults.end(), padding.begin(), padding.end());
  padding = fault::single_fault(fault::FaultKind::kTxBackpressure,
                                probe.horizon / 2, probe.horizon / 8,
                                probe.nic);
  opts.faults.insert(opts.faults.end(), padding.begin(), padding.end());

  const ResolvedSeed resolved = resolve_seed(7, opts);
  ASSERT_EQ(resolved.opts.faults.size(), 3u);
  ASSERT_FALSE(run_scenario(resolved.sc, resolved.opts).ok());
  const fault::FaultSchedule minimal = minimize_schedule(resolved);
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal.front().kind, fault::FaultKind::kLeakCommit);
}

}  // namespace
}  // namespace flowvalve::check
