// Unit tests for the labeling function: filter rules, the exact-match flow
// cache, and the combined classifier.
#include <gtest/gtest.h>

#include "core/classifier.h"

namespace flowvalve::core {
namespace {

FiveTuple make_tuple(std::uint32_t src_ip = 0x0a000001, std::uint16_t dport = 80) {
  FiveTuple t;
  t.src_ip = src_ip;
  t.dst_ip = 0x0a000002;
  t.src_port = 1234;
  t.dst_port = dport;
  t.proto = IpProto::kTcp;
  return t;
}

net::Packet make_packet(std::uint16_t vf, FiveTuple t) {
  net::Packet p;
  p.vf_port = vf;
  p.tuple = t;
  p.wire_bytes = 200;
  return p;
}

// ---- FilterRule -----------------------------------------------------------

TEST(FilterRule, WildcardMatchesEverything) {
  FilterRule r;
  EXPECT_TRUE(r.matches(0, make_tuple(), 0));
  EXPECT_TRUE(r.matches(7, make_tuple(0x01020304, 9999), 63));
}

TEST(FilterRule, VfPortExact) {
  FilterRule r;
  r.vf_port = 3;
  EXPECT_TRUE(r.matches(3, make_tuple(), 0));
  EXPECT_FALSE(r.matches(4, make_tuple(), 0));
}

TEST(FilterRule, ProtocolMatch) {
  FilterRule r;
  r.proto = IpProto::kUdp;
  FiveTuple t = make_tuple();
  EXPECT_FALSE(r.matches(0, t, 0));
  t.proto = IpProto::kUdp;
  EXPECT_TRUE(r.matches(0, t, 0));
}

TEST(FilterRule, PrefixMatching) {
  FilterRule r;
  r.src_ip = 0x0a000000;  // 10.0.0.0/8
  r.src_prefix_len = 8;
  EXPECT_TRUE(r.matches(0, make_tuple(0x0a123456), 0));
  EXPECT_FALSE(r.matches(0, make_tuple(0x0b000001), 0));
  r.src_prefix_len = 32;
  r.src_ip = 0x0a000001;
  EXPECT_TRUE(r.matches(0, make_tuple(0x0a000001), 0));
  EXPECT_FALSE(r.matches(0, make_tuple(0x0a000002), 0));
}

TEST(FilterRule, PortsAndDscp) {
  FilterRule r;
  r.dst_port = 443;
  r.dscp = 12;
  EXPECT_FALSE(r.matches(0, make_tuple(0x0a000001, 80), 12));
  EXPECT_FALSE(r.matches(0, make_tuple(0x0a000001, 443), 0));
  EXPECT_TRUE(r.matches(0, make_tuple(0x0a000001, 443), 12));
}

// ---- LabelTable -----------------------------------------------------------

TEST(LabelTableTest, InternAndGet) {
  LabelTable table;
  QosLabel l1;
  l1.path = {0, 1, 2};
  const auto id1 = table.intern(l1);
  QosLabel l2;
  l2.path = {0, 3};
  const auto id2 = table.intern(l2);
  EXPECT_NE(id1, id2);
  EXPECT_EQ(table.get(id1).path, (std::vector<ClassId>{0, 1, 2}));
  EXPECT_EQ(table.get(id2).path, (std::vector<ClassId>{0, 3}));
  EXPECT_EQ(table.size(), 2u);
}

// ---- ExactMatchFlowCache ----------------------------------------------------

TEST(FlowCache, MissThenHit) {
  ExactMatchFlowCache cache(1024);
  const FiveTuple t = make_tuple();
  EXPECT_FALSE(cache.lookup(1, t, 1).has_value());
  cache.insert(1, t, 42, 2);
  auto hit = cache.lookup(1, t, 3);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 42u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(FlowCache, VfIsPartOfTheKey) {
  ExactMatchFlowCache cache(1024);
  const FiveTuple t = make_tuple();
  cache.insert(1, t, 42, 1);
  EXPECT_FALSE(cache.lookup(2, t, 2).has_value());
}

TEST(FlowCache, ReinsertUpdatesLabel) {
  ExactMatchFlowCache cache(1024);
  const FiveTuple t = make_tuple();
  cache.insert(1, t, 42, 1);
  cache.insert(1, t, 43, 2);
  EXPECT_EQ(*cache.lookup(1, t, 3), 43u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(FlowCache, EvictsStalestUnderPressure) {
  // Tiny cache: 1 set × 4 ways.
  ExactMatchFlowCache cache(4);
  for (std::uint32_t i = 0; i < 64; ++i)
    cache.insert(0, make_tuple(0x0a000000 + i), i, i);
  EXPECT_GT(cache.stats().evictions, 0u);
  // Most recently inserted entry must still be there.
  EXPECT_TRUE(cache.lookup(0, make_tuple(0x0a000000 + 63), 100).has_value());
}

TEST(FlowCache, ClearResets) {
  ExactMatchFlowCache cache(64);
  cache.insert(0, make_tuple(), 1, 1);
  cache.clear();
  EXPECT_FALSE(cache.lookup(0, make_tuple(), 2).has_value());
  EXPECT_EQ(cache.stats().insertions, 0u);
}

// ---- Classifier -------------------------------------------------------------

Classifier make_classifier() {
  Classifier c;
  FilterRule r1;
  r1.pref = 10;
  r1.vf_port = 0;
  r1.label = 100;
  c.add_rule(r1);
  FilterRule r2;
  r2.pref = 20;
  r2.dst_port = 80;
  r2.label = 200;
  c.add_rule(r2);
  FilterRule r3;
  r3.pref = 30;
  r3.label = 300;  // catch-all
  c.add_rule(r3);
  return c;
}

TEST(ClassifierTest, FirstMatchWinsByPref) {
  Classifier c = make_classifier();
  net::Packet on_vf0 = make_packet(0, make_tuple(0x0a000001, 80));
  EXPECT_EQ(c.classify(on_vf0, 1).label, 100u);  // vf rule wins over dport rule
  net::Packet web = make_packet(3, make_tuple(0x0a000001, 80));
  EXPECT_EQ(c.classify(web, 2).label, 200u);
  net::Packet other = make_packet(3, make_tuple(0x0a000001, 22));
  EXPECT_EQ(c.classify(other, 3).label, 300u);
}

TEST(ClassifierTest, PrefOrderIndependentOfInsertionOrder) {
  Classifier c;
  FilterRule catchall;
  catchall.pref = 50;
  catchall.label = 1;
  c.add_rule(catchall);
  FilterRule specific;
  specific.pref = 5;
  specific.dst_port = 80;
  specific.label = 2;
  c.add_rule(specific);  // added later but lower pref
  net::Packet p = make_packet(0, make_tuple(0x0a000001, 80));
  EXPECT_EQ(c.classify(p, 1).label, 2u);
}

TEST(ClassifierTest, CacheHitOnSecondPacket) {
  Classifier c = make_classifier();
  net::Packet p = make_packet(3, make_tuple(0x0a000001, 80));
  const auto first = c.classify(p, 1);
  EXPECT_FALSE(first.cache_hit);
  const auto second = c.classify(p, 2);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.label, first.label);
  EXPECT_LT(second.cycles, first.cycles);
}

TEST(ClassifierTest, CacheDisabledAlwaysWalksRules) {
  Classifier c = make_classifier();
  c.set_cache_enabled(false);
  net::Packet p = make_packet(3, make_tuple(0x0a000001, 80));
  const auto first = c.classify(p, 1);
  const auto second = c.classify(p, 2);
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(second.cycles, first.cycles);
}

TEST(ClassifierTest, UnmatchedGetsDefaultLabel) {
  Classifier c;  // no rules
  EXPECT_EQ(c.classify(make_packet(0, make_tuple()), 1).label, net::kUnclassified);
  c.set_default_label(77);
  EXPECT_EQ(c.classify(make_packet(0, make_tuple()), 2).label, 77u);
}

// ---- Epoch-tagged cache entries (live reconfiguration) ----------------------

TEST(FlowCache, StaleEpochEntryInvalidatedInPlace) {
  ExactMatchFlowCache cache(1024);
  const FiveTuple t = make_tuple();
  cache.insert(1, t, 42, 1, /*epoch=*/0);
  // Same tuple, newer label epoch: the entry is stale — miss, invalidate.
  EXPECT_FALSE(cache.lookup(1, t, 2, /*epoch=*/1).has_value());
  EXPECT_EQ(cache.stats().stale_invalidations, 1u);
  // The slot was invalidated, not left to repeat the stale cost: a second
  // lookup is a plain miss, not another stale invalidation.
  EXPECT_FALSE(cache.lookup(1, t, 3, /*epoch=*/1).has_value());
  EXPECT_EQ(cache.stats().stale_invalidations, 1u);
  // Re-inserting under the new epoch restores the fast path.
  cache.insert(1, t, 43, 4, /*epoch=*/1);
  EXPECT_EQ(*cache.lookup(1, t, 5, /*epoch=*/1), 43u);
}

TEST(ClassifierTest, ReplaceRulesWithEpochBumpReclassifiesCachedFlows) {
  Classifier c = make_classifier();
  net::Packet p = make_packet(3, make_tuple(0x0a000001, 80));
  EXPECT_EQ(c.classify(p, 1).label, 200u);
  EXPECT_TRUE(c.classify(p, 2).cache_hit);  // resident under epoch 0

  // Control-plane filter swap: port 80 now maps to label 500. Without the
  // epoch bump the cached 200 would keep winning.
  std::vector<FilterRule> swapped;
  FilterRule web;
  web.pref = 10;
  web.dst_port = 80;
  web.label = 500;
  swapped.push_back(web);
  c.replace_rules(std::move(swapped));
  c.bump_label_epoch();
  EXPECT_EQ(c.label_epoch(), 1u);

  const auto after = c.classify(p, 3);
  EXPECT_FALSE(after.cache_hit);  // stale entry invalidated, rules re-walked
  EXPECT_EQ(after.label, 500u);
  EXPECT_EQ(c.cache().stats().stale_invalidations, 1u);
  EXPECT_TRUE(c.classify(p, 4).cache_hit);  // re-cached under epoch 1
  EXPECT_EQ(c.classify(p, 5).label, 500u);
}

TEST(ClassifierTest, EpochBumpDoesNotFlushWholeCache) {
  Classifier c = make_classifier();
  // Populate many distinct flows, then bump: insertions survive (lazy
  // invalidation), each paying exactly one re-classification on next use.
  for (std::uint32_t i = 0; i < 32; ++i)
    c.classify(make_packet(3, make_tuple(0x0a000100 + i, 80)), i + 1);
  const std::uint64_t inserted = c.cache().stats().insertions;
  c.bump_label_epoch();
  EXPECT_EQ(c.cache().stats().insertions, inserted);  // nothing evicted eagerly
  std::uint64_t stale = 0;
  for (std::uint32_t i = 0; i < 32; ++i) {
    const auto r = c.classify(make_packet(3, make_tuple(0x0a000100 + i, 80)), 100 + i);
    EXPECT_FALSE(r.cache_hit);
    ++stale;
  }
  EXPECT_EQ(c.cache().stats().stale_invalidations, stale);
}

TEST(ClassifierTest, CycleCostModelOrdering) {
  // A miss walking many rules costs more than a hit; deeper walks cost more.
  ClassifierCosts costs;
  Classifier c(costs);
  for (std::uint32_t i = 0; i < 10; ++i) {
    FilterRule r;
    r.pref = i;
    r.dst_port = static_cast<std::uint16_t>(1000 + i);
    r.label = i;
    c.add_rule(r);
  }
  net::Packet deep = make_packet(0, make_tuple(0x0a000001, 1009));
  const auto miss = c.classify(deep, 1);
  EXPECT_GE(miss.cycles, costs.cache_miss_cycles + 10 * costs.per_rule_cycles);
  const auto hit = c.classify(deep, 2);
  EXPECT_EQ(hit.cycles, costs.cache_hit_cycles);
}

}  // namespace
}  // namespace flowvalve::core
