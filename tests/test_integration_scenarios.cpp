// Integration tests: end-to-end conformance assertions over the experiment
// scenarios (shortened horizons for CI speed). These encode the *shape*
// claims of the paper's evaluation; the full-length figures come from the
// bench binaries.
#include <gtest/gtest.h>

#include "exp/scenarios.h"

namespace flowvalve {
namespace {

constexpr std::uint64_t kSeed = 2024;

TEST(IntegrationFig11a, MotivationPolicyEnforced) {
  auto r = exp::run_fig11a_fv_motivation(kSeed, sim::seconds(60));
  // NC alone gets nearly the whole 10G policy (ceil 7.5 + borrowing).
  EXPECT_GT(r.mean_rate("NC", 5, 15).gbps(), 9.2);
  // 15-30s: KVS prio over ML; ML holds its 2G guarantee.
  EXPECT_GT(r.mean_rate("KVS", 20, 30).gbps(), 6.0);
  EXPECT_NEAR(r.mean_rate("ML", 20, 30).gbps(), 2.0, 0.4);
  // 30-45s: WS takes its 1/3 share of S1.
  EXPECT_NEAR(r.mean_rate("WS", 35, 45).gbps(), 3.3, 0.7);
  EXPECT_NEAR(r.mean_rate("KVS", 35, 45).gbps(), 4.5, 0.8);
  // 45-60s: ML absorbs KVS's release.
  EXPECT_NEAR(r.mean_rate("ML", 50, 60).gbps(), 6.6, 0.8);
  // The 10G policy ceiling holds throughout (±5% measurement slack).
  for (double t = 2; t < 58; t += 2)
    EXPECT_LT(r.total_rate(t, t + 2).gbps(), 10.6) << "window at " << t << "s";
}

TEST(IntegrationFig3, HtbMisbehavesAsPaperReports) {
  auto r = exp::run_fig3_htb_motivation(kSeed, sim::seconds(45));
  // 1. NC alone stays visibly below the 10G policy.
  EXPECT_LT(r.mean_rate("NC", 5, 15).gbps(), 9.2);
  // 2. The 10G ceiling is overshot to ≈12G.
  EXPECT_GT(r.total_rate(20, 42).gbps(), 11.0);
  EXPECT_LT(r.total_rate(20, 42).gbps(), 13.0);
  // 3. KVS and ML split equally despite KVS's priority.
  const double kvs = r.mean_rate("KVS", 20, 30).gbps();
  const double ml = r.mean_rate("ML", 20, 30).gbps();
  EXPECT_NEAR(kvs, ml, 1.0);
}

TEST(IntegrationFig11b, FairQueueingSharesEqually) {
  auto r = exp::run_fig11b_fair_queueing(kSeed, sim::seconds(40));
  EXPECT_GT(r.mean_rate("App0", 4, 10).gbps(), 37.0);  // alone: line rate
  EXPECT_NEAR(r.mean_rate("App0", 14, 20).gbps(), 20.0, 1.5);
  EXPECT_NEAR(r.mean_rate("App1", 14, 20).gbps(), 20.0, 1.5);
  for (const char* app : {"App0", "App1", "App2", "App3"})
    EXPECT_NEAR(r.mean_rate(app, 33, 40).gbps(), 10.0, 1.0) << app;
  EXPECT_GT(r.total_rate(33, 40).gbps(), 38.5);  // line rate held
}

TEST(IntegrationFig11c, WeightedSharesPerFig12) {
  auto r = exp::run_fig11c_weighted_fq(kSeed, sim::seconds(40));
  // 20-30s: App0 holds ~20 (1:1 against S1) regardless of App2/3 joining.
  EXPECT_NEAR(r.mean_rate("App0", 23, 30).gbps(), 20.0, 1.5);
  EXPECT_NEAR(r.mean_rate("App1", 23, 30).gbps(), 10.0, 1.2);
  EXPECT_NEAR(r.mean_rate("App2", 23, 30).gbps(), 5.0, 1.0);
  EXPECT_NEAR(r.mean_rate("App3", 23, 30).gbps(), 5.0, 1.0);
  // After App0 leaves, its bandwidth is shared (borrowing, unweighted):
  // everyone gains, total stays at line rate.
  EXPECT_GT(r.mean_rate("App2", 33, 40).gbps(), 8.0);
  EXPECT_GT(r.mean_rate("App3", 33, 40).gbps(), 8.0);
  EXPECT_GT(r.mean_rate("App1", 33, 40).gbps(), 12.0);
  EXPECT_GT(r.total_rate(33, 40).gbps(), 38.0);
}

TEST(IntegrationFig13, FlowValveMatchesPaperNumbers) {
  // Paper: 3.23 / 4.75 / 19.69 Mpps at 1518 / 1024 / 64 B.
  EXPECT_NEAR(exp::run_fig13_flowvalve(1518, kSeed), 3.23, 0.1);
  EXPECT_NEAR(exp::run_fig13_flowvalve(1024, kSeed), 4.75, 0.15);
  EXPECT_NEAR(exp::run_fig13_flowvalve(64, kSeed), 19.69, 0.8);
}

TEST(IntegrationFig13, DpdkMatchesPaperNumbers) {
  // Paper: 2.25 Mpps on 1 core @1518 B; 9.06 Mpps on 4 cores @64 B.
  EXPECT_NEAR(exp::run_fig13_dpdk(1518, 1, kSeed), 2.25, 0.15);
  EXPECT_NEAR(exp::run_fig13_dpdk(64, 4, kSeed), 9.06, 0.5);
  // FlowValve's 64 B rate "comes up to using eight CPU cores by DPDK".
  const double dpdk8 = exp::run_fig13_dpdk(64, 8, kSeed);
  EXPECT_GT(dpdk8, 15.0);
  EXPECT_LT(dpdk8, exp::run_fig13_flowvalve(64, kSeed) + 3.0);
}

TEST(IntegrationFig14, DelayShapeMatchesPaper) {
  const auto g10 = sim::Rate::gigabits_per_sec(10);
  const auto g40 = sim::Rate::gigabits_per_sec(40);
  const auto fv10 = exp::run_fig14_flowvalve(g10, kSeed);
  const auto fv40 = exp::run_fig14_flowvalve(g40, kSeed);
  const auto htb = exp::run_fig14_htb(kSeed);
  const auto dpdk10 = exp::run_fig14_dpdk(g10, 1, kSeed);
  const auto fwd = exp::run_fig14_forwarding_only(kSeed);

  // FlowValve lowest mean at 10G.
  EXPECT_LT(fv10.mean_us, htb.mean_us + htb.stddev_us);
  EXPECT_LT(fv10.mean_us, dpdk10.mean_us);
  // At 40G, delay rises ~4-6x toward the pipeline constant...
  EXPECT_GT(fv40.mean_us / fv10.mean_us, 3.0);
  EXPECT_NEAR(fv40.mean_us, fwd.mean_us, 25.0);
  // ...with far less jitter than the kernel path.
  EXPECT_LT(fv40.stddev_us, htb.stddev_us);
  // Forwarding-only reproduces the paper's 161.01 µs observation.
  EXPECT_NEAR(fwd.mean_us, 161.0, 6.0);
  EXPECT_LT(fwd.stddev_us, 2.0);
}

TEST(IntegrationDeterminism, SameSeedSameResult) {
  auto a = exp::run_fig11b_fair_queueing(7, sim::seconds(6));
  auto b = exp::run_fig11b_fair_queueing(7, sim::seconds(6));
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    ASSERT_EQ(a.apps[i].series->bins(), b.apps[i].series->bins());
    EXPECT_EQ(a.apps[i].series->total_bytes(), b.apps[i].series->total_bytes());
  }
}

TEST(IntegrationDeterminism, DifferentSeedsDiffer) {
  auto a = exp::run_fig11b_fair_queueing(7, sim::seconds(4));
  auto b = exp::run_fig11b_fair_queueing(8, sim::seconds(4));
  EXPECT_NE(a.apps[0].series->total_bytes(), b.apps[0].series->total_bytes());
}

TEST(IntegrationCpu, FlowValveFreesHostCores) {
  auto fv = exp::run_fig11a_fv_motivation(kSeed, sim::seconds(10));
  auto htb = exp::run_fig3_htb_motivation(kSeed, sim::seconds(10));
  // The offloaded scheduler consumes (near) zero host cores; the kernel
  // path burns more than one — the paper's "saves at least two cores" claim
  // scales with packet rate (Fig. 13 shows DPDK needing 4).
  EXPECT_LT(fv.host_cores_used, 0.2);
  EXPECT_GT(htb.host_cores_used, 1.0);
}

}  // namespace
}  // namespace flowvalve
