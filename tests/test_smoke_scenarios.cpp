// End-to-end smoke checks over the experiment scenarios (short horizons).
// Deep conformance assertions live in test_integration_*.cpp; this file
// verifies the harness runs and produces physically sane numbers.
#include <gtest/gtest.h>

#include <cstdio>

#include "exp/scenarios.h"

namespace flowvalve {
namespace {

TEST(SmokeScenarios, Fig11aMotivationShortRun) {
  auto r = exp::run_fig11a_fv_motivation(/*seed=*/1, sim::seconds(8));
  std::printf("%s", r.table(sim::seconds(1)).c_str());
  // NC alone: should reach ≈10 Gbps (7.5 ceiling + borrowed slack) once
  // converged; total never exceeds the 10G policy by more than slack.
  const double nc = r.mean_rate("NC", 4.0, 8.0).gbps();
  EXPECT_GT(nc, 8.5);
  EXPECT_LT(nc, 10.5);
}

TEST(SmokeScenarios, Fig3HtbShortRun) {
  auto r = exp::run_fig3_htb_motivation(/*seed=*/1, sim::seconds(8));
  std::printf("%s", r.table(sim::seconds(1)).c_str());
  const double nc = r.mean_rate("NC", 4.0, 8.0).gbps();
  // Kernel path: single sender core caps below the 10G policy.
  EXPECT_GT(nc, 6.0);
  EXPECT_LT(nc, 9.8);
}

TEST(SmokeScenarios, Fig13FlowValve1518) {
  const double mpps = exp::run_fig13_flowvalve(1518, 1);
  std::printf("fv@1518B: %.3f Mpps\n", mpps);
  EXPECT_GT(mpps, 2.9);
  EXPECT_LT(mpps, 3.4);
}

TEST(SmokeScenarios, Fig14FlowValve40G) {
  auto d = exp::run_fig14_flowvalve(sim::Rate::gigabits_per_sec(40), 1);
  std::printf("%s: mean=%.2fus stddev=%.2fus p99=%.2fus n=%llu\n", d.label.c_str(),
              d.mean_us, d.stddev_us, d.p99_us,
              static_cast<unsigned long long>(d.samples));
  EXPECT_GT(d.samples, 100u);
  EXPECT_GT(d.mean_us, 140.0);
  EXPECT_LT(d.mean_us, 260.0);
}

}  // namespace
}  // namespace flowvalve
