// Tier-1 coverage for the fault plane + self-healing pipeline (ISSUE 3):
// every survivable fault kind, injected at its default intensity into a
// saturated differential scenario, must (a) let the simulation drain to
// quiescence (the run returning at all is the no-deadlock assertion — a
// wedged pipeline would spin run_all() forever or trip the conservation
// checker at drain), (b) keep every invariant checker clean, including the
// post-clear share re-convergence window, and (c) be observed as recovered
// by the fault plane's health probe within its bounded deadline.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/fuzzer.h"
#include "check/runner.h"
#include "fault/fault.h"
#include "np/nic_pipeline.h"
#include "sim/simulator.h"

namespace flowvalve::check {
namespace {

net::Packet packet_on(std::uint16_t vf, std::uint64_t id) {
  net::Packet p;
  p.id = id;
  p.vf_port = vf;
  p.flow_id = vf;
  p.wire_bytes = 1518;
  return p;
}

/// Worker-bound pipeline: 2 slow workers (~100 µs per packet) on a fast
/// wire, so a crashed worker is guaranteed to be holding a packet.
np::NpConfig slow_worker_config() {
  np::NpConfig cfg;
  cfg.num_vfs = 1;
  cfg.num_workers = 2;
  cfg.base_rx_cycles = 60000;
  cfg.base_tx_cycles = 60000;
  return cfg;
}

std::string first_violation(const CheckReport& r) {
  return r.violations.empty() ? std::string("(none stored)")
                              : r.violations.front().to_string();
}

/// One fault of `kind` dropped into the middle of a saturated differential
/// scenario: inject at 40% of the horizon, clear at 60%, leaving the last
/// 40% for recovery + the share re-convergence window.
CheckReport run_single_fault(fault::FaultKind kind, std::uint64_t seed,
                             bool force_reorder = false) {
  FuzzScenario sc = generate_differential_scenario(seed);
  if (force_reorder) sc.nic.enforce_reorder = true;
  sc.nic.recovery.admission_enabled = true;
  RunOptions opts;
  opts.differential = true;  // arms the share re-convergence checker
  opts.faults = fault::single_fault(kind, sc.horizon * 2 / 5, sc.horizon / 5,
                                    sc.nic);
  return run_scenario(sc, opts);
}

class FaultRecovery : public ::testing::TestWithParam<fault::FaultKind> {};

TEST_P(FaultRecovery, SurvivesCleanlyAndReconverges) {
  const CheckReport report = run_single_fault(GetParam(), 1);
  EXPECT_TRUE(report.ok()) << report.summary() << "\n" << first_violation(report);
  ASSERT_EQ(report.faults_injected, 1u);
  EXPECT_EQ(report.faults_recovered, 1u)
      << "pipeline never probed healthy after "
      << fault::fault_kind_name(GetParam());
  EXPECT_GT(report.nic.forwarded_to_wire, 0u);
  EXPECT_EQ(report.delivered, report.nic.forwarded_to_wire);
}

INSTANTIATE_TEST_SUITE_P(
    AllSurvivableKinds, FaultRecovery,
    ::testing::Values(fault::FaultKind::kWorkerStall,
                      fault::FaultKind::kWorkerCrash,
                      fault::FaultKind::kWireDip,
                      fault::FaultKind::kTxBackpressure,
                      fault::FaultKind::kReorderStall,
                      fault::FaultKind::kCacheStorm,
                      fault::FaultKind::kCachePoison,
                      fault::FaultKind::kHashCollisionStorm,
                      fault::FaultKind::kChurnStorm,
                      fault::FaultKind::kIslandBlackout,
                      fault::FaultKind::kFlappingWorker,
                      fault::FaultKind::kCtrlPartition),
    [](const ::testing::TestParamInfo<fault::FaultKind>& info) {
      std::string name = fault::fault_kind_name(info.param);
      for (char& c : name)
        if (c == '-') c = '_';  // gtest param names must be alphanumeric
      return name;
    });

TEST(FaultRecovery, WatchdogSalvagesCrashedWorkersPackets) {
  sim::Simulator sim;
  np::NpConfig cfg = slow_worker_config();
  cfg.recovery.watchdog_budget = sim::microseconds(400);
  np::NullProcessor proc;
  np::NicPipeline pipe(sim, cfg, proc);
  int delivered = 0, dropped = 0;
  pipe.set_on_delivered([&](const net::Packet&) { ++delivered; });
  pipe.set_on_dropped([&](const net::Packet&) { ++dropped; });
  for (std::uint64_t i = 0; i < 8; ++i) pipe.submit(packet_on(0, i));
  // Both workers picked up a packet at t=0; kill worker 0 mid-execution.
  // The watchdog must salvage its packet onto the healthy worker, and the
  // repair must bring the dead micro-engine back with nothing lost.
  sim.schedule_at(sim::microseconds(10), [&] { pipe.fault_crash_worker(0); });
  sim.schedule_at(sim::milliseconds(5), [&] { pipe.repair_worker(0); });
  sim.run_all();
  EXPECT_GE(pipe.stats().watchdog_requeues, 1u);
  EXPECT_EQ(pipe.stats().workers_repaired, 1u);
  EXPECT_EQ(pipe.in_flight(), 0u);
  EXPECT_EQ(pipe.hung_workers(), 0u);
  EXPECT_EQ(delivered, 8);
  EXPECT_EQ(dropped, 0);
}

TEST(FaultRecovery, ReorderTimeoutUnwedgesTheWindow) {
  // A crash with reorder enforcement on leaves a head-of-line hole parked
  // behind the dead worker's sequence number. With the watchdog budget too
  // generous to salvage in time, the bounded window timeout must declare
  // the hole lost and flush past it instead of wedging the Tx path.
  sim::Simulator sim;
  np::NpConfig cfg = slow_worker_config();
  cfg.enforce_reorder = true;
  cfg.recovery.watchdog_budget = sim::milliseconds(2);
  cfg.recovery.reorder_timeout = sim::microseconds(300);
  np::NullProcessor proc;
  np::NicPipeline pipe(sim, cfg, proc);
  int delivered = 0, dropped = 0;
  pipe.set_on_delivered([&](const net::Packet&) { ++delivered; });
  pipe.set_on_dropped([&](const net::Packet&) { ++dropped; });
  for (std::uint64_t i = 0; i < 8; ++i) pipe.submit(packet_on(0, i));
  sim.schedule_at(sim::microseconds(10), [&] { pipe.fault_crash_worker(0); });
  sim.schedule_at(sim::milliseconds(5), [&] { pipe.repair_worker(0); });
  sim.run_all();
  EXPECT_GE(pipe.stats().reorder_timeout_flushes, 1u);
  EXPECT_GE(pipe.stats().reorder_timeout_drops, 1u);
  EXPECT_EQ(pipe.in_flight(), 0u);
  EXPECT_EQ(pipe.hung_workers(), 0u);
  // The crashed worker's packet is the only loss; everything parked behind
  // the hole must have been released and delivered.
  EXPECT_EQ(delivered + dropped, 8);
  EXPECT_GE(delivered, 7);
}

/// 4 slow workers in 2 islands: blackout must drop the doomed in-flight
/// work of exactly its own island, and restart must bring every frozen
/// worker back with conservation intact.
TEST(FaultRecovery, IslandBlackoutDropsInFlightAndRestartsCleanly) {
  sim::Simulator sim;
  np::NpConfig cfg = slow_worker_config();
  cfg.num_workers = 4;
  cfg.num_islands = 2;
  cfg.recovery.restart_probation_modulus = 0;  // probation tested separately
  np::NullProcessor proc;
  np::NicPipeline pipe(sim, cfg, proc);
  int delivered = 0, dropped = 0;
  pipe.set_on_delivered([&](const net::Packet&) { ++delivered; });
  pipe.set_on_dropped([&](const net::Packet&) { ++dropped; });
  for (std::uint64_t i = 0; i < 12; ++i) pipe.submit(packet_on(0, i));
  // All four workers are busy at t=10µs; island 0 = workers {0,1}.
  sim.schedule_at(sim::microseconds(10),
                  [&] { pipe.fault_blackout_island(0); });
  sim.schedule_at(sim::milliseconds(5), [&] { pipe.restart_island(0); });
  sim.run_all();
  EXPECT_EQ(pipe.stats().island_restart_drops, 2u);  // one per island-0 worker
  EXPECT_EQ(pipe.stats().islands_restarted, 1u);
  EXPECT_EQ(pipe.stats().workers_repaired, 2u);
  EXPECT_EQ(pipe.in_flight(), 0u);
  EXPECT_EQ(pipe.hung_workers(), 0u);
  EXPECT_EQ(delivered, 10);
  EXPECT_EQ(dropped, 2);
}

TEST(FaultRecovery, IslandRestartProbationEngagesAndAutoReleases) {
  sim::Simulator sim;
  np::NpConfig cfg = slow_worker_config();
  cfg.num_workers = 4;
  cfg.num_islands = 2;
  cfg.recovery.restart_probation_modulus = 8;
  cfg.recovery.restart_probation = sim::microseconds(500);
  np::NullProcessor proc;
  np::NicPipeline pipe(sim, cfg, proc);
  sim.schedule_at(sim::microseconds(10),
                  [&] { pipe.fault_blackout_island(0); });
  sim.schedule_at(sim::microseconds(100), [&] { pipe.restart_island(0); });
  // Mid-probation the valve is held by the restart, not a reconfig swap.
  sim.schedule_at(sim::microseconds(300), [&] {
    EXPECT_TRUE(pipe.admission_forced());
    EXPECT_TRUE(pipe.restart_probation_active());
  });
  // Probation self-releases 500µs after the restart.
  sim.schedule_at(sim::microseconds(700), [&] {
    EXPECT_FALSE(pipe.admission_forced());
    EXPECT_FALSE(pipe.restart_probation_active());
  });
  sim.run_all();
}

/// A reconfig taking the admission valve mid-probation must supersede the
/// probation cleanly: the timed release becomes a no-op instead of yanking
/// the valve out from under the control plane.
TEST(FaultRecovery, ControlPlaneSupersedesRestartProbation) {
  sim::Simulator sim;
  np::NpConfig cfg = slow_worker_config();
  cfg.num_workers = 4;
  cfg.num_islands = 2;
  cfg.recovery.restart_probation_modulus = 8;
  cfg.recovery.restart_probation = sim::microseconds(500);
  np::NullProcessor proc;
  np::NicPipeline pipe(sim, cfg, proc);
  sim.schedule_at(sim::microseconds(10),
                  [&] { pipe.fault_blackout_island(0); });
  sim.schedule_at(sim::microseconds(100), [&] { pipe.restart_island(0); });
  sim.schedule_at(sim::microseconds(200), [&] {
    pipe.control_force_admission(4);  // reconfig swap takes over the valve
    EXPECT_FALSE(pipe.restart_probation_active());
  });
  // Past the probation deadline, the stale timed release must NOT have
  // released the control plane's hold.
  sim.schedule_at(sim::microseconds(900), [&] {
    EXPECT_TRUE(pipe.admission_forced());
    pipe.control_release_admission();
  });
  sim.run_all();
  EXPECT_FALSE(pipe.admission_forced());
}

/// Satellite regression: overlapping same-worker faults — a stall whose
/// watchdog deadline is pending, then a crash (and repair) of the same
/// worker mid-stall — must not let the stale watchdog epoch double-requeue
/// the packet or break ingress_seq delivery order.
TEST(FaultRecovery, WatchdogEpochGuardSurvivesOverlappingWorkerFaults) {
  sim::Simulator sim;
  np::NpConfig cfg = slow_worker_config();
  cfg.enforce_reorder = true;
  cfg.recovery.watchdog_budget = sim::microseconds(400);
  np::NullProcessor proc;
  np::NicPipeline pipe(sim, cfg, proc);
  std::vector<std::uint64_t> order;
  int dropped = 0;
  pipe.set_on_delivered([&](const net::Packet& p) { order.push_back(p.id); });
  pipe.set_on_dropped([&](const net::Packet&) { ++dropped; });
  for (std::uint64_t i = 0; i < 8; ++i) pipe.submit(packet_on(0, i));
  // Stall worker 0 long enough to arm its watchdog deadline, then crash the
  // same worker before the stall clears, then repair. The watchdog entry
  // armed for the stall epoch is stale by the time it fires.
  sim.schedule_at(sim::microseconds(10),
                  [&] { pipe.fault_stall_worker(0, sim::milliseconds(2)); });
  sim.schedule_at(sim::microseconds(200), [&] { pipe.fault_crash_worker(0); });
  sim.schedule_at(sim::milliseconds(5), [&] { pipe.repair_worker(0); });
  sim.run_all();
  EXPECT_EQ(pipe.in_flight(), 0u);
  EXPECT_EQ(pipe.hung_workers(), 0u);
  // Conservation: every packet resolved exactly once.
  EXPECT_EQ(order.size() + static_cast<std::size_t>(dropped), 8u);
  // No duplicate delivery and no ingress_seq inversion past the reorder
  // window: delivered ids must be strictly increasing.
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_LT(order[i - 1], order[i]) << "delivery order inverted at " << i;
}

/// kCtrlPartition against a live control plane: stale workers must be
/// repaired when the partition heals, and the run must stay clean.
TEST(FaultRecovery, CtrlPartitionWithLiveReconfigHeals) {
  FuzzScenario sc = generate_differential_scenario(1);
  sc.nic.recovery.admission_enabled = true;
  RunOptions opts;
  opts.differential = true;
  opts.reconfig_updates = 2;
  opts.faults = fault::single_fault(fault::FaultKind::kCtrlPartition,
                                    sc.horizon * 2 / 5, sc.horizon / 5,
                                    sc.nic);
  const CheckReport report = run_scenario(sc, opts);
  EXPECT_TRUE(report.ok()) << report.summary() << "\n"
                           << first_violation(report);
  EXPECT_GE(report.faults_recovered, 1u);
}

TEST(FaultRecovery, RecoveryTimeIsBoundedByProbeDeadline) {
  for (const fault::FaultKind kind :
       {fault::FaultKind::kWorkerCrash, fault::FaultKind::kWireDip,
        fault::FaultKind::kReorderStall}) {
    const CheckReport report = run_single_fault(kind, 2);
    ASSERT_TRUE(report.ok()) << fault::fault_kind_name(kind) << ": "
                             << report.summary();
    ASSERT_EQ(report.faults_recovered, 1u) << fault::fault_kind_name(kind);
    // FaultPlane::Options.probe_deadline default.
    EXPECT_LE(report.worst_recovery, sim::milliseconds(50))
        << fault::fault_kind_name(kind);
  }
}

TEST(FaultRecovery, PermanentBugIsNeverMarkedRecovered) {
  FuzzScenario sc = generate_differential_scenario(1);
  RunOptions opts;
  fault::FaultEvent leak;
  leak.kind = fault::FaultKind::kLeakCommit;
  leak.at = 0;
  leak.duration = 0;  // permanent
  leak.period = 97;
  opts.faults.push_back(leak);
  const CheckReport report = run_scenario(sc, opts);
  EXPECT_FALSE(report.ok());  // conservation must catch the leak
  EXPECT_EQ(report.faults_injected, 1u);
  EXPECT_EQ(report.faults_recovered, 0u);
}

TEST(FaultRecovery, FaultRunsAreDeterministic) {
  const CheckReport a = run_single_fault(fault::FaultKind::kWorkerCrash, 3);
  const CheckReport b = run_single_fault(fault::FaultKind::kWorkerCrash, 3);
  EXPECT_EQ(a.nic.submitted, b.nic.submitted);
  EXPECT_EQ(a.nic.forwarded_to_wire, b.nic.forwarded_to_wire);
  EXPECT_EQ(a.nic.watchdog_requeues, b.nic.watchdog_requeues);
  EXPECT_EQ(a.nic.reorder_timeout_drops, b.nic.reorder_timeout_drops);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.worst_recovery, b.worst_recovery);
  EXPECT_EQ(a.packets_lost_to_faults, b.packets_lost_to_faults);
}

}  // namespace
}  // namespace flowvalve::check
