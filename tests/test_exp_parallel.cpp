// Tier-1 coverage for the work-stealing ParallelRunner: every task runs
// exactly once, results merge in task-index order regardless of completion
// order, a throwing task becomes a structured failure record in its own
// slot while every other task completes, and jobs == 1 is a true inline
// sequential execution (the equivalence oracle's reference).
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exp/parallel_runner.h"
#include "sim/simulator.h"

namespace flowvalve::exp {
namespace {

TEST(ParallelRunner, ResolveJobsConvention) {
  EXPECT_GE(hardware_jobs(), 1u);
  EXPECT_EQ(resolve_jobs(0), hardware_jobs());  // 0 = every host core
  EXPECT_EQ(resolve_jobs(1), 1u);
  EXPECT_EQ(resolve_jobs(7), 7u);  // taken literally, even past hardware
}

TEST(ParallelRunner, EveryTaskRunsExactlyOnce) {
  constexpr std::size_t kTasks = 257;  // odd, > any deque's share
  for (unsigned jobs : {1u, 2u, 4u, 8u}) {
    std::vector<std::atomic<int>> hits(kTasks);
    ParallelRunner runner(jobs);
    const auto failures = runner.run(
        kTasks, [&](std::size_t i) { hits[i].fetch_add(1); });
    ASSERT_EQ(failures.size(), kTasks);
    for (std::size_t i = 0; i < kTasks; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "task " << i << " at " << jobs << " jobs";
      EXPECT_FALSE(failures[i].has_value());
    }
  }
}

TEST(ParallelRunner, MapMergesInTaskIndexOrder) {
  constexpr std::size_t kTasks = 64;
  ParallelRunner runner(4);
  const auto out = runner.map<std::size_t>(
      kTasks, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(out[i].ok());
    EXPECT_EQ(*out[i].result, i * i);
  }
}

TEST(ParallelRunner, ThrowingTaskIsIsolated) {
  constexpr std::size_t kTasks = 32;
  constexpr std::size_t kBad = 13;
  for (unsigned jobs : {1u, 4u}) {
    ParallelRunner runner(jobs);
    const auto out = runner.map<int>(kTasks, [](std::size_t i) {
      if (i == kBad) throw std::runtime_error("deliberate task failure");
      return static_cast<int>(i);
    });
    for (std::size_t i = 0; i < kTasks; ++i) {
      if (i == kBad) {
        ASSERT_TRUE(out[i].failure.has_value());
        EXPECT_EQ(out[i].failure->index, kBad);
        EXPECT_EQ(out[i].failure->what, "deliberate task failure");
        EXPECT_FALSE(out[i].result.has_value());
      } else {
        ASSERT_TRUE(out[i].ok()) << "task " << i << " at " << jobs << " jobs";
        EXPECT_EQ(*out[i].result, static_cast<int>(i));
      }
    }
  }
}

TEST(ParallelRunner, NonStdExceptionIsCaptured) {
  ParallelRunner runner(2);
  const auto failures = runner.run(3, [](std::size_t i) {
    if (i == 1) throw 42;  // not a std::exception
  });
  EXPECT_FALSE(failures[0].has_value());
  ASSERT_TRUE(failures[1].has_value());
  EXPECT_EQ(failures[1]->what, "non-std exception");
  EXPECT_FALSE(failures[2].has_value());
}

TEST(ParallelRunner, SingleJobRunsInlineInIndexOrder) {
  ParallelRunner runner(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  const auto failures = runner.run(16, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);  // safe: inline execution is single-threaded
  });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  for (const auto& f : failures) EXPECT_FALSE(f.has_value());
}

// The isolation invariant the whole design rests on: concurrent Simulators
// in one process never observe each other. Each task runs its own kernel
// with its own event stream and must see exactly its own virtual time and
// event count.
TEST(ParallelRunner, ConcurrentSimulatorsAreIsolated) {
  constexpr std::size_t kTasks = 16;
  ParallelRunner runner(8);
  const auto out = runner.map<std::uint64_t>(kTasks, [](std::size_t i) {
    sim::Simulator sim;
    const std::uint64_t ticks = 100 + i;
    std::uint64_t fired = 0;
    for (std::uint64_t t = 1; t <= ticks; ++t)
      sim.schedule_at(static_cast<sim::SimTime>(t), [&fired] { ++fired; });
    sim.run_all();
    EXPECT_EQ(sim.now(), static_cast<sim::SimTime>(ticks));
    return fired;
  });
  for (std::size_t i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(out[i].ok());
    EXPECT_EQ(*out[i].result, 100 + i);
  }
}

}  // namespace
}  // namespace flowvalve::exp
